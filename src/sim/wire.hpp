#pragma once

// Bit-accurate wire format for every message the simulator carries.
//
// The paper's O(log N)-bit message-size claim (§2.1.1, Lemma 4.5) used to be
// "verified" against bit counts each sender self-reported.  This layer makes
// the sizes measurements instead: senders construct a typed `Message`, the
// transport encodes it with the bit-level codec below and charges the
// *measured* size.  A field a protocol forgot to pay for now shows up in the
// encoder, not in a hand-maintained formula.
//
// Codec conventions:
//   * Elias-gamma for order-statistics fields (distances, counts, levels):
//     encoding v costs 2*floor(log2(v+1)) + 1 bits — self-delimiting and
//     O(log v), exactly the shape Lemma 4.5 budgets for.
//   * LEB128-style varint (7-bit groups, MSB-first groups, continuation
//     bit) for identifier fields (agent ids, label counters) that are dense
//     near zero but unbounded.
//   * fixed-width bit fields for small closed enums (message tag, topic,
//     phase) and flags.
//
// Every message is one of five tagged variants, one per `MsgKind`, so the
// per-kind accounting in `NetStats` decomposes the paper's cost terms.  In
// debug builds `Network::send` decodes every encoded message back and
// compares it to the original, so an encode/decode asymmetry fails loudly
// at the send site.

#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {

/// The c1 + c2*ceil(log2 U) message-size envelope the benches arm strict
/// mode with (§2.1.1, Lemma 4.5).  The additive term covers tag/topic/flag
/// bits and the self-delimiting-code constants, so only a genuinely
/// super-logarithmic field can trip it.
[[nodiscard]] constexpr std::uint64_t size_envelope_bits(std::uint64_t u) {
  const std::uint64_t log_u = u < 2 ? 1 : std::bit_width(u - 1);
  return 32 + 8 * log_u;
}

/// Accounting category of a message; the paper's bounds decompose by these.
enum class MsgKind : std::uint8_t {
  kAgent,       ///< request-handling agent hop (the dominant cost term)
  kReject,      ///< reject-wave flooding (O(U) total)
  kControl,     ///< broadcast/upcast for iteration management (Obs. 2.1, App. A)
  kDataMove,    ///< graceful-deletion data handoff to parent
  kApp,         ///< application-layer traffic (DFS relabeling, estimates, ...)
  kChannel,     ///< reliable-channel control traffic (acks; see sim/channel.hpp)
  kBatch,       ///< coalesced same-edge frame of back-to-back messages
  kKindCount__  ///< sentinel
};

/// Human-readable kind name; returns "invalid" for the sentinel and for any
/// out-of-range byte (a corrupted tag must not crash the formatter).
[[nodiscard]] const char* msg_kind_name(MsgKind kind);

/// Prints the kind name (plus the raw byte for invalid values) so failing
/// test expectations show "control", not an unprintable raw byte.
std::ostream& operator<<(std::ostream& os, MsgKind kind);

// ---- bit stream -------------------------------------------------------------

/// An encoded message: `bits` valid bits, MSB-first, in `bytes`.  Unused
/// trailing bits of the last byte are always zero (BitWriter only ever sets
/// bits it was given), so byte-wise equality is bit-stream equality.
struct Encoded {
  std::vector<std::uint8_t> bytes;
  std::uint64_t bits = 0;
  bool operator==(const Encoded&) const = default;
};

/// Width of the leading kind tag on every wire message (3 bits: 7 kinds).
inline constexpr std::uint32_t kMsgTagBits = 3;

/// Exact bit cost of the Elias-gamma code for `v` (see BitWriter::put_gamma).
[[nodiscard]] constexpr std::uint64_t gamma_bits(std::uint64_t v) {
  return 2 * static_cast<std::uint64_t>(std::bit_width(v + 1) - 1) + 1;
}

/// Exact bit cost of the varint code for `v` (see BitWriter::put_varint).
[[nodiscard]] constexpr std::uint64_t varint_bits(std::uint64_t v) {
  std::uint64_t groups = 1;
  for (std::uint64_t rest = v >> 7; rest != 0; rest >>= 7) ++groups;
  return 8 * groups;
}

/// Append-only bit stream writer (MSB-first within each byte).
class BitWriter {
 public:
  BitWriter() = default;
  /// Pre-sizes the output buffer for an expected encoding of `expected_bits`
  /// bits (e.g., the size_envelope_bits(u) hint, or an exact BitCounter
  /// pass), so the buffer never regrows mid-encode.
  explicit BitWriter(std::uint64_t expected_bits) {
    out_.bytes.reserve((expected_bits + 7) / 8);
  }
  /// Adopts `reuse`'s byte buffer (cleared, capacity kept): a caller that
  /// round-trips the same Encoded through repeated encode cycles reaches an
  /// allocation-free steady state (forest hibernation does exactly this).
  explicit BitWriter(Encoded&& reuse) : out_(std::move(reuse)) {
    out_.bytes.clear();
    out_.bits = 0;
  }

  void put_bit(bool bit);
  /// Appends the low `width` bits of `value`, most significant first.
  void put_bits(std::uint64_t value, std::uint32_t width);
  /// Elias-gamma code of v+1 (so v = 0 is representable); v < 2^62.
  void put_gamma(std::uint64_t v);
  /// 7-bit-group varint with continuation bits, high groups first.
  void put_varint(std::uint64_t v);
  /// Appends `n` zero bits (opaque payload whose size must be paid for).
  void pad_zeros(std::uint64_t n);
  /// Appends all of `src`, MSB-first (channel frames embed inner messages).
  void put_encoded(const Encoded& src);

  [[nodiscard]] std::uint64_t bit_count() const { return out_.bits; }
  [[nodiscard]] Encoded finish() { return std::move(out_); }

 private:
  Encoded out_;
};

/// Size-only writer: same interface as BitWriter, but it never touches a
/// byte buffer — it just adds up the exact cost of each field.  Encoding a
/// message through both writers yields bit_count() == Encoded::bits by
/// construction (one shared body-writer template, asserted exhaustively in
/// test_wire.cpp), which is what lets release builds charge measured sizes
/// without materializing a single byte.
class BitCounter {
 public:
  void put_bit(bool) { ++bits_; }
  void put_bits(std::uint64_t value, std::uint32_t width) {
    DYNCON_REQUIRE(width <= 64, "bit-field width exceeds 64");
    DYNCON_REQUIRE(width == 64 || value < (std::uint64_t{1} << width),
                   "value does not fit the declared bit-field width");
    bits_ += width;
  }
  void put_gamma(std::uint64_t v) {
    DYNCON_REQUIRE(v < (std::uint64_t{1} << 62), "gamma field overflow");
    bits_ += gamma_bits(v);
  }
  void put_varint(std::uint64_t v) { bits_ += varint_bits(v); }
  void pad_zeros(std::uint64_t n) { bits_ += n; }
  void put_encoded(const Encoded& src) { bits_ += src.bits; }

  [[nodiscard]] std::uint64_t bit_count() const { return bits_; }

 private:
  std::uint64_t bits_ = 0;
};

/// Bounds-checked reader over an `Encoded` buffer.
class BitReader {
 public:
  explicit BitReader(const Encoded& e) : enc_(e) {}

  [[nodiscard]] bool get_bit();
  [[nodiscard]] std::uint64_t get_bits(std::uint32_t width);
  [[nodiscard]] std::uint64_t get_gamma();
  [[nodiscard]] std::uint64_t get_varint();
  void skip(std::uint64_t n);

  [[nodiscard]] std::uint64_t position() const { return pos_; }
  [[nodiscard]] std::uint64_t remaining() const { return enc_.bits - pos_; }
  [[nodiscard]] bool finished() const { return pos_ == enc_.bits; }

 private:
  const Encoded& enc_;
  std::uint64_t pos_ = 0;
};

// ---- typed message bodies ---------------------------------------------------

/// What a kControl message is doing (2-bit field on the wire).
enum class ControlTopic : std::uint8_t {
  kBroadcast,  ///< value pushed down a tree edge (convergecast down, N_i)
  kUpcast,     ///< aggregated value climbing toward the root
  kRotate,     ///< iteration-boundary reset (leftover/iteration count)
  kTerminate,  ///< termination signal + acknowledgement (Obs. 2.1)
};

/// What a kApp message is doing (2-bit field on the wire).
enum class AppTopic : std::uint8_t {
  kToken,    ///< DFS relabeling token (labels, name-assignment ids)
  kReport,   ///< estimate/weight dissemination (w0, child reports)
  kMetered,  ///< foreign payload metered through the controller (§2.2)
};

/// One agent hop (§4.3): the agent state a taxi message must carry.
struct AgentHopMsg {
  std::uint64_t agent = 0;         ///< agent identity (varint)
  std::uint64_t distance = 0;      ///< hops to origin (gamma; <= depth)
  std::uint64_t top_distance = 0;  ///< DistToTop counter (gamma)
  std::uint32_t bag_level = 0;     ///< package level in the Bag (gamma)
  std::uint8_t phase = 0;          ///< protocol phase tag (< 8, 3 bits)
  bool carrying = false;           ///< a package rides in the Bag
  bool operator==(const AgentHopMsg&) const = default;
};

/// One reject-wave fanout step: pure signal, no semantic fields (O(1) bits).
struct RejectWaveMsg {
  bool operator==(const RejectWaveMsg&) const = default;
};

/// One control message carrying a single O(log n)-bit value.
struct ControlMsg {
  ControlTopic topic = ControlTopic::kBroadcast;
  std::uint64_t value = 0;  ///< broadcast/aggregated value (gamma)
  bool operator==(const ControlMsg&) const = default;
};

/// One record of a graceful-deletion data handoff (§4.4.1).
struct DataMoveMsg {
  std::uint64_t item = 0;  ///< id of the node whose data is moving (gamma)
  bool operator==(const DataMoveMsg&) const = default;
};

/// One application message: a value plus an optional opaque payload whose
/// length is encoded (and paid for, bit by bit) on the wire.
struct AppMsg {
  AppTopic topic = AppTopic::kToken;
  std::uint64_t value = 0;        ///< label/estimate value (varint)
  std::uint64_t opaque_bits = 0;  ///< metered foreign payload size (gamma+pad)
  bool operator==(const AppMsg&) const = default;
};

/// What a kChannel frame is doing (1-bit field on the wire).
enum class ChannelTopic : std::uint8_t {
  kData,  ///< a sequenced protocol message riding the reliable channel
  kAck,   ///< cumulative acknowledgement flowing back to the sender
};

/// One reliable-channel frame (sim/channel.hpp).  A data frame carries the
/// *encoded* inner protocol message verbatim plus the channel header
/// (sequence number); an ack carries only the cumulative sequence number.
/// The header overhead is therefore measured on the wire, not claimed.
struct ChannelMsg {
  ChannelTopic topic = ChannelTopic::kAck;
  std::uint64_t seq = 0;  ///< data: frame sequence; ack: next expected (gamma)
  Encoded payload;        ///< data: encoded inner message; ack: empty
  bool operator==(const ChannelMsg&) const = default;

  /// Accounting kind of the wrapped message (the payload's leading tag), so
  /// NetStats can keep charging retransmitted agent hops as agent traffic.
  /// Requires a data frame with a well-formed payload.
  [[nodiscard]] MsgKind inner_kind() const;
};

/// One coalesced same-edge frame: consecutive sends on one (src, dst) link
/// within a delivery window, shipped as a single wire message.  The layout
/// is one 3-bit tag, a gamma-coded payload count, then the payloads back to
/// back (each with its own gamma length prefix, the ChannelMsg embedding
/// convention) — so the frame costs one header plus the measured payload
/// bits, which is exactly the saving batching claims.  Batch frames never
/// nest: a payload must not itself be a kBatch message.
struct BatchMsg {
  std::vector<Encoded> payloads;
  bool operator==(const BatchMsg&) const = default;

  /// Accounting kind of payload `i` (its leading tag).
  [[nodiscard]] MsgKind payload_kind(std::size_t i) const;
};

// ---- the tagged message -----------------------------------------------------

/// A tagged wire message.  The variant order matches `MsgKind`, so the
/// 3-bit wire tag, the variant index, and the accounting kind agree.
class Message {
 public:
  using Body = std::variant<AgentHopMsg, RejectWaveMsg, ControlMsg,
                            DataMoveMsg, AppMsg, ChannelMsg, BatchMsg>;

  explicit Message(Body body) : body_(std::move(body)) {}

  static Message agent_hop(std::uint64_t agent, std::uint64_t distance,
                           std::uint64_t top_distance, std::uint32_t bag_level,
                           std::uint8_t phase, bool carrying);
  static Message reject_wave();
  static Message control(ControlTopic topic, std::uint64_t value);
  static Message data_move(std::uint64_t item);
  static Message app_value(AppTopic topic, std::uint64_t value);
  /// A metered foreign payload of `opaque_bits` bits (§2.2 message meter).
  static Message app_payload(std::uint64_t opaque_bits);
  /// A reliable-channel data frame wrapping `inner` (which must not itself
  /// be a channel frame: the channel never nests).
  static Message channel_data(std::uint64_t seq, const Message& inner);
  /// Same, from an already-encoded inner message — the channel feeds it the
  /// network's per-kind encode cache so a run of same-shaped sends reuses
  /// one encoding instead of re-running the encoder per frame.
  static Message channel_data(std::uint64_t seq, Encoded inner);
  /// A reliable-channel cumulative ack: every frame with sequence < `seq`
  /// on this link has been delivered.
  static Message channel_ack(std::uint64_t seq);
  /// A coalesced same-edge frame of already-encoded payloads (none of which
  /// may itself be a batch frame: batches never nest).
  static Message batch_frame(std::vector<Encoded> payloads);

  [[nodiscard]] MsgKind kind() const {
    return static_cast<MsgKind>(body_.index());
  }
  [[nodiscard]] const Body& body() const { return body_; }
  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::get<T>(body_);
  }

  /// Bit-level encoding; `Encoded::bits` is the measured message size.
  [[nodiscard]] Encoded encode() const;
  /// Inverse of encode(); throws ContractError on malformed input
  /// (bad tag, truncated fields, trailing bits).
  [[nodiscard]] static Message decode(const Encoded& e);
  /// Measured encoded size in bits, computed by the size-only BitCounter
  /// pass — no byte buffer, no allocation.  Exactly encode().bits (the two
  /// share one body-writer; asserted per kind in test_wire.cpp).
  [[nodiscard]] std::uint64_t encoded_bits() const;
  /// Measured encoded size in bits (alias of encoded_bits()).
  [[nodiscard]] std::uint64_t measured_bits() const { return encoded_bits(); }

  bool operator==(const Message&) const = default;
  [[nodiscard]] std::string str() const;

 private:
  Body body_;
};

/// Exact wire size of a batch frame over payloads whose sizes are already
/// known: the 3-bit tag + gamma(count) + per payload gamma(bits) + bits.
/// Lets the release-build network charge a frame arithmetically, without
/// assembling (or allocating) it; test_batch asserts it equals the bits of
/// the frame Message::batch_frame actually encodes.
[[nodiscard]] inline std::uint64_t batch_frame_bits(
    const std::uint64_t* payload_bits, std::size_t count) {
  std::uint64_t bits = kMsgTagBits + gamma_bits(count);
  for (std::size_t i = 0; i < count; ++i) {
    bits += gamma_bits(payload_bits[i]) + payload_bits[i];
  }
  return bits;
}

// ---- per-kind encode cache --------------------------------------------------

/// Per-kind memo of the last message encoded, extending the PR-4 charge memo
/// (kind -> (prototype, bits)) to the full encoded bytes.  Protocol traffic
/// is dominated by runs of near-identical small messages (an agent re-sends
/// the same hop shape along a path; rejects and acks repeat verbatim), so a
/// one-entry-per-kind cache already captures most of the redundancy while
/// costing one POD comparison per lookup.
///
/// Only POD-bodied kinds are cacheable: kChannel and kBatch embed encoded
/// payload vectors, so their equality test would cost as much as the encode
/// they are meant to skip (and their seq/count fields change every frame).
///
/// Two tiers, so the zero-alloc release hot path stays zero-alloc:
///   * measured_bits() caches (prototype -> bits); a miss runs the size-only
///     BitCounter pass (no allocation) and refreshes the slot.
///   * encoded() caches the full byte buffer; a miss materializes it once,
///     then repeat senders (the ARQ channel re-wrapping the same inner
///     message) get the bytes back without re-encoding.
class EncodeCache {
 public:
  [[nodiscard]] static constexpr bool cacheable(MsgKind k) {
    return k != MsgKind::kChannel && k != MsgKind::kBatch &&
           k != MsgKind::kKindCount__;
  }

  /// Measured encoded size of `msg` in bits (== msg.encoded_bits()); skips
  /// the BitCounter pass on a hit.  Never allocates for cacheable kinds.
  [[nodiscard]] std::uint64_t measured_bits(const Message& msg) {
    const MsgKind k = msg.kind();
    if (!cacheable(k)) return msg.encoded_bits();
    if (k == MsgKind::kAgent) {
      // Agent hops mutate every hop (distance / top_distance), so the memo
      // never pays for them: every lookup would miss, and the miss path
      // adds a prototype compare + copy-assign on top of the size pass it
      // runs anyway.  Skip straight to the (allocation-free) counter.
      return msg.encoded_bits();
    }
    Slot& slot = slots_[static_cast<std::size_t>(k)];
    ++lookups_;
    if (slot.key && *slot.key == msg) {
      ++hits_;
      return slot.bits;
    }
    slot.key = msg;
    slot.bits = msg.encoded_bits();
    slot.enc.reset();  // bytes of the old prototype are stale
    return slot.bits;
  }

  /// Full encoded bytes of `msg` (== msg.encode()); returns the cached
  /// buffer on a hit.  The reference is valid until the next cache call for
  /// the same kind.
  [[nodiscard]] const Encoded& encoded(const Message& msg) {
    const MsgKind k = msg.kind();
    DYNCON_REQUIRE(cacheable(k), "EncodeCache::encoded needs a POD-bodied kind");
    Slot& slot = slots_[static_cast<std::size_t>(k)];
    ++lookups_;
    if (slot.key && *slot.key == msg && slot.enc) {
      ++hits_;
      return *slot.enc;
    }
    slot.key = msg;
    slot.enc = msg.encode();
    slot.bits = slot.enc->bits;
    return *slot.enc;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }

 private:
  struct Slot {
    std::optional<Message> key;   ///< last prototype of this kind
    std::uint64_t bits = 0;       ///< its measured size (always fresh)
    std::optional<Encoded> enc;   ///< its bytes (filled lazily by encoded())
  };
  std::array<Slot, static_cast<std::size_t>(MsgKind::kKindCount__)> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t lookups_ = 0;
};

}  // namespace dyncon::sim

#pragma once

// Node crash/restart adversary (ROADMAP open item 3).
//
// The link-level adversaries in sim/fault.hpp decide message fates; this
// layer decides *node* fates.  A crash takes a node's volatile state down
// with it — whoever registered as a CrashListener (the distributed
// controllers) learns about each transition and applies the semantic
// damage: wiping whiteboards, dooming the lock holder, killing parked
// agents.  The transport-level effect composes with the existing
// fault/delay/channel stack through CrashFault, a FaultPolicy that drops
// every transmission touching a down endpoint, so an ARQ channel riding
// the same network bridges the outage with ordinary retransmissions.
//
// Determinism contract (PR 5/6): the schedule is a *pure function* of
// (node, time) under a construction-time salt — the StallFault idiom — so
// no RNG draw order is perturbed, and the same seed yields byte-identical
// runs at any --jobs/--shards.  The driver pre-schedules every
// crash/restart transition at start(), so their event-queue sequence
// numbers are fixed before any request enters the system.
//
// Model boundaries (PROTOCOL.md §9):
//   * only nodes known at start() crash (ids >= the start limit never go
//     down — nodes born mid-run are outside the scheduled adversary);
//   * one node is immune (the root: it hosts Storage, the controller's
//     identity);
//   * down windows are finite (down_len < period), so every retransmission
//     eventually lands and the event queue drains.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dyncon::sim {

/// Seeded, pure-function crash windows.  A salted hash marks
/// `node_fraction` of the eligible nodes crash-prone; a crash-prone node is
/// down for `down_len` ticks every `period` ticks at a per-node phase.  The
/// first window of every node starts at or after `period`, so t=0 setup
/// never runs against a dead node.
class CrashSchedule {
 public:
  /// A crash-free schedule (down() is always false).
  CrashSchedule() = default;

  CrashSchedule(Rng rng, double node_fraction, SimTime period,
                SimTime down_len);

  /// Nodes with id >= `limit` never crash (born after the adversary was
  /// fixed).  kNoNode means "no limit".
  void set_limit(NodeId limit) { limit_ = limit; }
  /// One node that never crashes (the tree root).
  void set_immune(NodeId node) { immune_ = node; }

  [[nodiscard]] bool crash_prone(NodeId v) const;
  /// Is `v` down at `now`?  Pure function; CrashFault and the CrashDriver
  /// both consult it, so the transport damage and the listener callbacks
  /// can never disagree.
  [[nodiscard]] bool down(NodeId v, SimTime now) const;
  /// Ticks until `v` is back up (0 when it is not down at `now`).
  [[nodiscard]] SimTime down_for(NodeId v, SimTime now) const;

  [[nodiscard]] bool crash_free() const {
    return node_fraction_ == 0.0 || down_len_ == 0;
  }
  [[nodiscard]] SimTime period() const { return period_; }
  [[nodiscard]] SimTime down_len() const { return down_len_; }
  [[nodiscard]] double node_fraction() const { return node_fraction_; }
  [[nodiscard]] std::string name() const;

  /// Start times of every down window of `v` in (0, horizon], ascending.
  [[nodiscard]] std::vector<SimTime> windows(NodeId v, SimTime horizon) const;

 private:
  [[nodiscard]] SimTime phase_of(NodeId v) const;

  double node_fraction_ = 0.0;
  SimTime period_ = 1, down_len_ = 0;
  std::uint64_t salt_ = 0;
  NodeId limit_ = kNoNode;
  NodeId immune_ = kNoNode;
};

/// The transport face of the crash adversary: any transmission whose
/// sender or receiver is down at send time is lost.  Compose it with the
/// link-level adversaries via ComposedFault (see make_crash_stack) — a
/// surviving reliable channel then retransmits across the outage.
class CrashFault final : public FaultPolicy {
 public:
  explicit CrashFault(std::shared_ptr<const CrashSchedule> schedule);
  [[nodiscard]] FaultDecision on_send(NodeId from, NodeId to, MsgKind,
                                      std::uint64_t, SimTime now) override;
  [[nodiscard]] bool fault_free() const override {
    return schedule_->crash_free();
  }
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<const CrashSchedule> schedule_;
};

/// `base` (possibly null, for "crash only") composed with a CrashFault
/// over `schedule`.
[[nodiscard]] std::unique_ptr<FaultPolicy> make_crash_stack(
    std::unique_ptr<FaultPolicy> base,
    std::shared_ptr<const CrashSchedule> schedule);

/// Protocol-layer observer of node transitions.  Callbacks fire from the
/// event loop in listener registration order.
class CrashListener {
 public:
  virtual ~CrashListener() = default;
  virtual void on_crash(NodeId v) = 0;
  virtual void on_restart(NodeId v) = 0;
};

/// Turns a CrashSchedule into event-queue transitions: start() schedules a
/// crash event at each window start and a restart event at each window
/// end, over [0, horizon].  Each transition bumps the crash.* counters,
/// notifies the listeners, and (restarts) emits one SpanKind::kCrash span
/// covering the whole down window, so outages are visible in the PR-7
/// span/flight-recorder tooling.
class CrashDriver {
 public:
  CrashDriver(EventQueue& queue, std::shared_ptr<const CrashSchedule> schedule);

  CrashDriver(const CrashDriver&) = delete;
  CrashDriver& operator=(const CrashDriver&) = delete;

  void add_listener(CrashListener* l);
  void remove_listener(CrashListener* l);

  /// Schedule every transition of nodes [0, limit) up to and including
  /// `horizon`.  Call once, before submitting work; also stamps the
  /// schedule-consulting helpers' node limit.
  void start(NodeId limit, SimTime horizon);

  [[nodiscard]] const CrashSchedule& schedule() const { return *schedule_; }
  [[nodiscard]] bool down(NodeId v) const {
    return schedule_->down(v, queue_.now());
  }
  /// Any scheduled node currently down?  The watchdog death probe treats
  /// an ongoing outage as "recovery still plausible" and re-arms.
  [[nodiscard]] bool any_down() const;

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

 private:
  void fire_crash(NodeId v);
  void fire_restart(NodeId v);

  EventQueue& queue_;
  std::shared_ptr<const CrashSchedule> schedule_;
  std::vector<CrashListener*> listeners_;
  NodeId limit_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace dyncon::sim

#pragma once

// Transport-fault adversaries.
//
// The paper's liveness arguments ("every request is eventually granted or
// rejected") assume reliable links; a DelayPolicy only decides *when* a
// message arrives, never *whether*.  A FaultPolicy is the adversary that
// decides whether: the Network consults it on every physical transmission
// and may drop the message, deliver extra copies, or hold it while a node
// is stalled.  Everything is derived from an explicit seed, so a failing
// chaos run replays exactly from its configuration.
//
// Faults compose with — they do not replace — the delay adversary: a
// surviving copy still gets its delay from the DelayPolicy.  Protocol
// layers that need the paper's reliable-link assumption back opt into the
// ReliableChannel sublayer (sim/channel.hpp), which rebuilds it on top of
// this faulty transport and pays for the rebuild in measured messages.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/wire.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace dyncon::sim {

/// What the fault adversary does to one physical transmission.
struct FaultDecision {
  bool drop = false;              ///< lose the message (after charging it)
  std::uint32_t duplicates = 0;   ///< extra deliveries beyond the first
  SimTime stall_ticks = 0;        ///< extra hold time (stalled endpoint)
};

/// Strategy deciding each transmission's fate.  `seq` is the network's
/// per-instance transmission counter and `now` the simulated time, so
/// policies can be pure functions (burst/stall windows) or stateful
/// seeded draws (probabilistic drop/duplication) — deterministic either way.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;

  [[nodiscard]] virtual FaultDecision on_send(NodeId from, NodeId to,
                                              MsgKind kind, std::uint64_t seq,
                                              SimTime now) = 0;

  /// True when the policy can never injure a message (all rates zero).  The
  /// Network treats such a policy exactly like no policy at all, and the
  /// ReliableChannel stays in zero-overhead passthrough.
  [[nodiscard]] virtual bool fault_free() const { return false; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Independent per-transmission loss with probability `p`.
class DropFault final : public FaultPolicy {
 public:
  DropFault(Rng rng, double p);
  [[nodiscard]] FaultDecision on_send(NodeId, NodeId, MsgKind, std::uint64_t,
                                      SimTime) override;
  [[nodiscard]] bool fault_free() const override { return p_ == 0.0; }
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  double p_;
};

/// Independent per-transmission duplication with probability `p`; a
/// duplicated message is delivered twice (each copy with its own delay).
class DuplicateFault final : public FaultPolicy {
 public:
  DuplicateFault(Rng rng, double p);
  [[nodiscard]] FaultDecision on_send(NodeId, NodeId, MsgKind, std::uint64_t,
                                      SimTime) override;
  [[nodiscard]] bool fault_free() const override { return p_ == 0.0; }
  [[nodiscard]] std::string name() const override;

 private:
  Rng rng_;
  double p_;
};

/// Burst loss on specific links: a salted hash marks `link_fraction` of the
/// directed links as flaky, and a flaky link loses *everything* sent during
/// its bursts — windows of `burst_len` ticks recurring every `period` ticks
/// at a per-link phase.  A pure function of (link, now), so retransmissions
/// that outlast the burst get through.
class BurstLossFault final : public FaultPolicy {
 public:
  BurstLossFault(Rng rng, double link_fraction, SimTime period,
                 SimTime burst_len);
  [[nodiscard]] FaultDecision on_send(NodeId from, NodeId to, MsgKind,
                                      std::uint64_t, SimTime now) override;
  [[nodiscard]] bool fault_free() const override {
    return link_fraction_ == 0.0 || burst_len_ == 0;
  }
  [[nodiscard]] std::string name() const override;
  /// Exposed for tests: is this directed link marked flaky?
  [[nodiscard]] bool flaky(NodeId from, NodeId to) const;

 private:
  double link_fraction_;
  SimTime period_, burst_len_;
  std::uint64_t salt_;
};

/// Node stall/resume windows: a salted hash marks `node_fraction` of nodes
/// stall-prone; a stall-prone node freezes for `stall_len` ticks every
/// `period` ticks (per-node phase).  Messages touching a stalled endpoint
/// are not lost — they are held until the window ends (the node "wakes up
/// and processes its queue"), modeled as extra delivery delay.
class StallFault final : public FaultPolicy {
 public:
  StallFault(Rng rng, double node_fraction, SimTime period, SimTime stall_len);
  [[nodiscard]] FaultDecision on_send(NodeId from, NodeId to, MsgKind,
                                      std::uint64_t, SimTime now) override;
  [[nodiscard]] bool fault_free() const override {
    return node_fraction_ == 0.0 || stall_len_ == 0;
  }
  [[nodiscard]] std::string name() const override;
  /// Exposed for tests: ticks until `node` resumes, 0 if not stalled at `now`.
  [[nodiscard]] SimTime stalled_for(NodeId node, SimTime now) const;

 private:
  double node_fraction_;
  SimTime period_, stall_len_;
  std::uint64_t salt_;
};

/// Runs every child policy and combines the damage: drop if any child
/// drops, duplicate counts add, stall holds take the max.
class ComposedFault final : public FaultPolicy {
 public:
  explicit ComposedFault(std::vector<std::unique_ptr<FaultPolicy>> children);
  [[nodiscard]] FaultDecision on_send(NodeId from, NodeId to, MsgKind kind,
                                      std::uint64_t seq, SimTime now) override;
  [[nodiscard]] bool fault_free() const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::vector<std::unique_ptr<FaultPolicy>> children_;
};

/// Factory helpers keyed by a small enum, so benches, the fuzzer, and the
/// chaos soak can sweep fault adversaries the way they sweep DelayKind.
enum class FaultKind {
  kNone,       ///< no policy (reliable links, byte-identical to the seed)
  kDrop,       ///< DropFault(p = 0.1)
  kDuplicate,  ///< DuplicateFault(p = 0.1)
  kBurst,      ///< BurstLossFault(20% of links, bursts of 24 every 96 ticks)
  kStall,      ///< StallFault(10% of nodes, stalls of 48 every 192 ticks)
  kChaos,      ///< all of the above composed, at reduced rates
};

/// nullptr for kNone; otherwise a seeded policy with the canonical sweep
/// parameters above.
[[nodiscard]] std::unique_ptr<FaultPolicy> make_fault(FaultKind kind,
                                                      std::uint64_t seed);
[[nodiscard]] const char* fault_kind_name(FaultKind kind);
[[nodiscard]] const std::vector<FaultKind>& all_fault_kinds();

}  // namespace dyncon::sim

#include "sim/delay.hpp"

#include "util/error.hpp"

namespace dyncon::sim {

FixedDelay::FixedDelay(SimTime ticks) : ticks_(ticks) {
  DYNCON_REQUIRE(ticks >= 1, "delay must be >= 1 tick");
}

SimTime FixedDelay::delay(NodeId, NodeId, std::uint64_t) { return ticks_; }

std::string FixedDelay::name() const {
  return "fixed(" + std::to_string(ticks_) + ")";
}

UniformDelay::UniformDelay(Rng rng, SimTime lo, SimTime hi)
    : rng_(rng), lo_(lo), hi_(hi) {
  DYNCON_REQUIRE(lo >= 1 && lo <= hi, "bad uniform delay range");
}

SimTime UniformDelay::delay(NodeId, NodeId, std::uint64_t) {
  return rng_.uniform(lo_, hi_);
}

std::string UniformDelay::name() const {
  return "uniform(" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
}

HeavyTailDelay::HeavyTailDelay(Rng rng, SimTime cap) : rng_(rng), cap_(cap) {
  DYNCON_REQUIRE(cap >= 1, "bad heavy-tail cap");
}

SimTime HeavyTailDelay::delay(NodeId, NodeId, std::uint64_t) {
  return rng_.zipf_tail(cap_);
}

std::string HeavyTailDelay::name() const {
  return "heavytail(cap=" + std::to_string(cap_) + ")";
}

BiasedDelay::BiasedDelay(Rng rng, double slow_fraction, SimTime slow_ticks)
    : rng_(rng), slow_fraction_(slow_fraction), slow_ticks_(slow_ticks) {
  DYNCON_REQUIRE(slow_fraction >= 0.0 && slow_fraction <= 1.0,
                 "slow_fraction out of range");
  DYNCON_REQUIRE(slow_ticks >= 1, "slow_ticks must be >= 1");
  salt_ = rng_.next();
}

bool BiasedDelay::is_slow(NodeId id) const {
  // Stable per-node coin flip derived from the policy's salt (full
  // murmur3 finalizer; one multiply round leaves nearby ids correlated).
  std::uint64_t h = id ^ salt_;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return u < slow_fraction_;
}

SimTime BiasedDelay::delay(NodeId from, NodeId to, std::uint64_t) {
  const bool slow = is_slow(from) || is_slow(to);
  const SimTime base = rng_.uniform(1, 3);
  return slow ? base + slow_ticks_ : base;
}

std::string BiasedDelay::name() const {
  return "biased(f=" + std::to_string(slow_fraction_) +
         ",slow=" + std::to_string(slow_ticks_) + ")";
}

ReorderDelay::ReorderDelay(Rng rng, SimTime window)
    : rng_(rng), window_(window) {
  DYNCON_REQUIRE(window >= 2, "reorder window must be >= 2");
}

SimTime ReorderDelay::delay(NodeId, NodeId, std::uint64_t seq) {
  // Descending within each window, with a little jitter: message k of a
  // window waits (window - k) base ticks, so later sends land earlier.
  const SimTime pos = seq % window_;
  return (window_ - pos) + rng_.uniform(0, 1);
}

std::string ReorderDelay::name() const {
  return "reorder(w=" + std::to_string(window_) + ")";
}

std::unique_ptr<DelayPolicy> make_delay(DelayKind kind, std::uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case DelayKind::kFixed:
      return std::make_unique<FixedDelay>(1);
    case DelayKind::kUniform:
      return std::make_unique<UniformDelay>(rng, 1, 16);
    case DelayKind::kHeavyTail:
      return std::make_unique<HeavyTailDelay>(rng, 256);
    case DelayKind::kBiased:
      return std::make_unique<BiasedDelay>(rng, 0.1, 64);
    case DelayKind::kReorder:
      return std::make_unique<ReorderDelay>(rng, 8);
  }
  throw ContractError("unknown DelayKind");
}

const char* delay_kind_name(DelayKind kind) {
  switch (kind) {
    case DelayKind::kFixed:
      return "fixed";
    case DelayKind::kUniform:
      return "uniform";
    case DelayKind::kHeavyTail:
      return "heavytail";
    case DelayKind::kBiased:
      return "biased";
    case DelayKind::kReorder:
      return "reorder";
  }
  return "?";
}

}  // namespace dyncon::sim

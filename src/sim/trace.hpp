#pragma once

// Optional execution trace for debugging distributed runs.
//
// Protocol layers emit typed events (obs/events.hpp) or compact text lines
// ("agent 7 locked node 12"); recording is off by default so the hot path
// costs one branch.  Tests that fail can re-run the same seed with tracing
// on and dump the tail — as formatted lines for eyeballs (`tail`) or as
// JSONL for tooling (`dump_jsonl`).
//
// `Trace` is the sim-facing name for the typed ring: the historical string
// API (`log`, `lines_recorded`) is a shim that records kText events, so
// existing call sites keep working while new code emits typed events.

#include <cstdint>
#include <string>
#include <utility>

#include "obs/events.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {

/// Bounded in-memory trace (keeps the most recent `capacity` entries).
class Trace : public obs::EventTrace {
 public:
  using obs::EventTrace::EventTrace;

  /// Record a text line (no-op when disabled) — the legacy entry point.
  void log(SimTime now, std::string line) {
    record(obs::TraceEvent{obs::EventKind::kText, now, kNoNode, 0, 0},
           std::move(line));
  }

  /// Record a typed event (no-op when disabled).
  void event(const obs::TraceEvent& ev) { record(ev); }

  /// Events recorded while enabled (the historical counter name).
  [[nodiscard]] std::uint64_t lines_recorded() const { return recorded(); }
};

}  // namespace dyncon::sim

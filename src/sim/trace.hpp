#pragma once

// Optional execution trace for debugging distributed runs.
//
// Protocol layers emit compact trace lines ("agent 7 locked node 12");
// recording is off by default so the hot path costs one branch.  Tests that
// fail can re-run the same seed with tracing on and dump the tail.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace dyncon::sim {

/// Bounded in-memory trace (keeps the most recent `capacity` lines).
class Trace {
 public:
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Record a line (no-op when disabled).
  void log(SimTime now, std::string line);

  /// Most recent lines, oldest first.
  [[nodiscard]] std::vector<std::string> tail(std::size_t n = 64) const;

  [[nodiscard]] std::uint64_t lines_recorded() const { return recorded_; }
  void clear();

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::deque<std::string> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace dyncon::sim

#pragma once

// The centralized (M,W)-controller of paper §3.1 (fixed, known U).
//
// Initially M permits (and infinitely many rejects) reside in the root's
// storage.  A request at u is served by Protocol GrantOrReject(u):
//
//   1. a reject package at u rejects the request;
//   2. a static package at u grants it (consuming one permit);
//   3. otherwise walk up from u looking for the closest *filler node*: an
//      ancestor at distance d hosting a mobile package of the unique level
//      whose window contains d.  If none exists up to the root, create a
//      level-j(u) package at the root — or start the reject wave if fewer
//      than 2^j(u) * phi permits remain;
//   4. distribute the found/created package down the path with Proc: a
//      level-k package moves to u_{k-1} (3*2^(k-2)*psi above u) and splits,
//      leaving one level-(k-1) package there; the final level-0 package
//      reaches u, becomes static, and grants the request.
//
// The cost measure is *move complexity* (PackageTable accounting).  Domains
// are maintained (optionally) per §3.2 so tests can audit Claim 3.1.
//
// `Mode::kExhaustSignal` replaces the reject wave with an `kExhausted`
// outcome so wrappers (Obs. 2.1 terminating transform, Obs. 3.4 iteration)
// can take over — the paper's "instead of rejecting a request, the
// algorithm clears the data structure ... and starts the i+1'st iteration".

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/controller_iface.hpp"
#include "core/domain.hpp"
#include "core/package.hpp"
#include "core/params.hpp"
#include "tree/dynamic_tree.hpp"
#include "util/interval.hpp"

namespace dyncon::core {

class CentralizedController final : public IController {
 public:
  enum class Mode : std::uint8_t {
    kRejectWave,     ///< paper default: broadcast rejects on exhaustion
    kExhaustSignal,  ///< return kExhausted instead (for wrappers)
  };

  struct Options {
    Mode mode = Mode::kRejectWave;
    bool track_domains = true;
    /// Serial numbers for the M permits (name assignment, §5.2); empty to
    /// run the plain anonymous-permit controller.
    Interval serials;
    /// Local observation hook (§5.3): called as (node, permits) whenever a
    /// package of `permits` permits moves down into `node`.  Nodes observe
    /// this locally — it costs no messages — and the subtree estimator is
    /// built on it.
    std::function<void(NodeId, std::uint64_t)> on_pass_down;
  };

  CentralizedController(tree::DynamicTree& tree, Params params,
                        Options options);
  CentralizedController(tree::DynamicTree& tree, Params params)
      : CentralizedController(tree, params, Options{}) {}
  ~CentralizedController() override;

  CentralizedController(const CentralizedController&) = delete;
  CentralizedController& operator=(const CentralizedController&) = delete;

  // IController.
  Result request_event(NodeId u) override;
  Result request_add_leaf(NodeId parent) override;
  Result request_add_internal_above(NodeId child) override;
  Result request_remove(NodeId v) override;
  [[nodiscard]] std::uint64_t cost() const override;
  [[nodiscard]] std::uint64_t permits_granted() const override {
    return granted_;
  }

  // Introspection.
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] std::uint64_t root_storage() const { return storage_; }
  [[nodiscard]] std::uint64_t rejects_delivered() const { return rejects_; }
  [[nodiscard]] bool reject_wave_started() const { return wave_; }
  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] const PackageTable& packages() const { return packages_; }
  [[nodiscard]] const DomainTracker* domains() const {
    return domains_.get();
  }

  /// Unused permits currently in packages plus the root storage (the L of
  /// Obs. 3.4's iteration step).
  [[nodiscard]] std::uint64_t unused_permits() const;

  /// Remaining serial numbers (root storage interval), if tracked.
  [[nodiscard]] const Interval& storage_serials() const {
    return storage_serials_;
  }

  /// Cancel every package and return their permits (and serials are
  /// forgotten; callers that track serials must harvest before clearing).
  /// Used by iteration wrappers when re-parameterizing.
  void clear_data_structure();

  // ---- hibernation images --------------------------------------------------

  /// The controller's complete mutable state (the tree itself is rebuilt
  /// separately).  Forest-scoped: controllers with serial tracking, domain
  /// tracking, or an on_pass_down hook refuse to be imaged.
  struct Image {
    std::uint64_t storage = 0;
    std::uint64_t granted = 0;
    std::uint64_t rejects = 0;
    bool wave = false;
    bool exhausted = false;
    PackageTable::Image packages;
    bool operator==(const Image&) const = default;
  };

  /// Capture the controller's state into `out` (cleared first).
  void extract_image(Image& out) const;

  /// Restore onto a freshly constructed controller with identical Params /
  /// Options over an identically rebuilt tree.  No counters re-fire
  /// (`permits.granted`, `wave.count`, `moves.total`, ... already counted
  /// in their original shard registry before hibernation).
  void restore_image(const Image& img);

  /// Rough heap footprint in bytes (delegates to the package table).
  [[nodiscard]] std::uint64_t approx_bytes() const {
    return packages_.approx_bytes();
  }

 private:
  /// What to do at u when the permit is granted.
  struct EventSpec {
    enum class Type : std::uint8_t {
      kNone,
      kAddLeaf,
      kAddInternal,
      kRemove,
    };
    Type type = Type::kNone;
    NodeId subject = kNoNode;  ///< parent-to-be / child-above / node-to-go
  };

  /// Span-emitting wrapper around handle_impl: every public request_* call
  /// funnels here, so one site records the per-operation span (an instant
  /// at obs::span_now() — the centralized controller is synchronous).
  Result handle(NodeId u, const EventSpec& ev);
  Result handle_impl(NodeId u, const EventSpec& ev);
  Result grant_from_static(PackageId st, NodeId u, const EventSpec& ev);
  void apply_event(NodeId u, const EventSpec& ev, Result& res);
  void start_reject_wave();
  /// Distribute package `p` (level j, hosted at path[dist]) down `path`
  /// (path[i] = ancestor of u at distance i), then grant at u.
  Result distribute_and_grant(PackageId p, std::uint32_t j,
                              const std::vector<NodeId>& path,
                              std::uint64_t dist, NodeId u,
                              const EventSpec& ev);

  tree::DynamicTree& tree_;
  Params params_;
  Options options_;
  PackageTable packages_;
  std::unique_ptr<DomainTracker> domains_;

  std::uint64_t storage_;  ///< permits remaining at the root
  Interval storage_serials_;
  std::uint64_t granted_ = 0;
  std::uint64_t rejects_ = 0;
  bool wave_ = false;
  bool exhausted_ = false;
};

}  // namespace dyncon::core

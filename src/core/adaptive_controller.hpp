#pragma once

// The unknown-U (M,W)-controller of Theorem 3.5.
//
// No bound on the number of nodes is known in advance.  The controller runs
// in iterations; iteration i assumes U = U_i and executes a *terminating*
// (M_i, W)-controller under that assumption, where
//
//   part 1 (Policy::kChangeCount):  U_i = 2 N_i (N_i = nodes at iteration
//     start) and the iteration is rotated after Z_i = U_i/4 topological
//     changes, giving move complexity
//     O(n0 log^2 n0 log(M/(W+1)) + sum_j log^2 n_j log(M/(W+1)));
//
//   part 2 (Policy::kSizeDoubling): the iteration is rotated when the node
//     count doubles relative to the maximum seen before the iteration (we
//     additionally rotate once the additions within an iteration reach that
//     maximum, which keeps the per-iteration U assumption sound — the paper
//     leaves this accounting implicit), giving O(N log^2 N log(M/(W+1))).
//
// Rotation performs a broadcast/upcast to count N_{i+1} and the granted
// requests Y_i, clears the structure, and starts iteration i+1 with
// M_{i+1} = M_i - Y_i.  If an iteration's terminating controller terminates
// on its own, fewer than W permits were left, so the controller as a whole
// starts its reject wave.

#include <cstdint>
#include <memory>

#include "core/terminating_controller.hpp"

namespace dyncon::core {

class AdaptiveController final : public IController {
 public:
  enum class Policy : std::uint8_t { kChangeCount, kSizeDoubling };

  struct Options {
    Policy policy = Policy::kChangeCount;
    bool track_domains = true;
  };

  AdaptiveController(tree::DynamicTree& tree, std::uint64_t M, std::uint64_t W,
                     Options options);
  AdaptiveController(tree::DynamicTree& tree, std::uint64_t M, std::uint64_t W)
      : AdaptiveController(tree, M, W, Options{}) {}

  Result request_event(NodeId u) override;
  Result request_add_leaf(NodeId parent) override;
  Result request_add_internal_above(NodeId child) override;
  Result request_remove(NodeId v) override;

  [[nodiscard]] std::uint64_t cost() const override;
  [[nodiscard]] std::uint64_t permits_granted() const override;

  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] std::uint64_t rejects_delivered() const { return rejects_; }
  [[nodiscard]] std::uint64_t current_U() const { return ui_; }

 private:
  template <typename Fn>
  Result run(Fn&& submit, bool topological);
  void start_iteration();
  void rotate();
  [[nodiscard]] bool should_rotate() const;

  tree::DynamicTree& tree_;
  Options options_;
  std::uint64_t w_;

  std::unique_ptr<TerminatingController> inner_;
  std::uint64_t mi_;          ///< permits available to the current iteration
  std::uint64_t ui_ = 0;      ///< the current iteration's U assumption
  std::uint64_t zi_ = 0;      ///< topological changes this iteration
  std::uint64_t adds_ = 0;    ///< additions this iteration (part-2 guard)
  std::uint64_t max_n_ = 0;   ///< max simultaneous nodes before iteration
  std::uint64_t iterations_ = 0;
  bool done_ = false;
  bool wave_charged_ = false;
  std::uint64_t granted_base_ = 0;
  std::uint64_t cost_base_ = 0;
  std::uint64_t rejects_ = 0;
};

}  // namespace dyncon::core

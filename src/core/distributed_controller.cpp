#include "core/distributed_controller.hpp"

#include <algorithm>
#include <utility>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "sim/watchdog.hpp"
#include "util/error.hpp"

namespace dyncon::core {

using agent::AgentId;

DistributedController::DistributedController(sim::Network& net,
                                             tree::DynamicTree& tree,
                                             Params params, Options options)
    : net_(net),
      tree_(tree),
      params_(params),
      options_(std::move(options)),
      taxi_(net, tree),
      storage_(params.M()),
      storage_serials_(options_.serials) {
  DYNCON_REQUIRE(
      storage_serials_.empty() || storage_serials_.size() == params.M(),
      "serial interval must cover exactly M permits");
  DYNCON_REQUIRE(options_.allow_unreliable_transport || !net_.lossy() ||
                     net_.reliable(),
                 "lossy network without a reliable channel: call "
                 "Network::enable_reliability() or opt in with "
                 "Options::allow_unreliable_transport");
  if (options_.track_domains) {
    domains_ = std::make_unique<DomainTracker>(tree_, params_, packages_);
    tree_.add_observer(domains_.get());
  }
  taxi_.set_on_arrival([this](AgentId id, NodeId node, NodeId came_from) {
    on_arrival(id, node, came_from);
  });
  // Assert (in debug builds) the network.hpp contract that the agent layer
  // only sends along tree edges.  kApp traffic (the §2.2 message meter) is
  // point-to-point by design and exempt; everything else must ride a live
  // parent-child edge at send time.
  net_.set_link_check(this, [this](NodeId from, NodeId to, sim::MsgKind k) {
    if (k == sim::MsgKind::kApp) return true;
    if (!tree_.alive(from) || !tree_.alive(to)) return false;
    return tree_.parent(from) == to || tree_.parent(to) == from;
  });
  if (options_.durability == agent::Durability::kDurable) {
    durable_ = std::make_unique<agent::DurableStore>(
        [this](NodeId v) { return snapshot_board(v); });
    if (options_.meter_persistence) durable_->set_charge_network(&net_);
    boards_.set_observer([this](NodeId v) { durable_->persist(v); });
  }
  if (options_.crashes != nullptr) {
    options_.crashes->add_listener(this);
    // Wrapped instances get no watchdog (the wrapper arms/disarms and
    // installs its own probe over the whole stack); a standalone controller
    // running with both a watchdog and a crash adversary wires the
    // orphan-lock release wave here.
    if (options_.watchdog != nullptr) {
      options_.watchdog->add_death_probe(this,
                                         [this] { return crash_recover(); });
    }
  }
}

DistributedController::~DistributedController() {
  if (options_.crashes != nullptr) {
    options_.crashes->remove_listener(this);
    if (options_.watchdog != nullptr) {
      options_.watchdog->remove_death_probe(this);
    }
  }
  net_.clear_link_check(this);
  if (domains_) tree_.remove_observer(domains_.get());
}

// ---- submission --------------------------------------------------------------

void DistributedController::submit_event(NodeId u, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kEvent, u}, std::move(done));
}

void DistributedController::submit_add_leaf(NodeId parent, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddLeaf, parent}, std::move(done));
}

void DistributedController::submit_add_internal_above(NodeId child,
                                                      Callback done) {
  DYNCON_REQUIRE(child != tree_.root(), "cannot insert above the root");
  submit(RequestSpec{RequestSpec::Type::kAddInternal, child},
         std::move(done));
}

void DistributedController::submit_remove(NodeId v, Callback done) {
  DYNCON_REQUIRE(v != tree_.root(), "the root is never deleted");
  submit(RequestSpec{RequestSpec::Type::kRemove, v}, std::move(done));
}

void DistributedController::submit(const RequestSpec& spec, Callback done) {
  DYNCON_REQUIRE(tree_.alive(spec.subject), "request subject not alive");
  DYNCON_REQUIRE(static_cast<bool>(done), "null completion callback");
  if (options_.watchdog != nullptr) {
    // Static label + stored origin keep arming allocation-free (PR 4).
    const sim::Watchdog::Token token =
        options_.watchdog->arm(spec.subject, request_type_name(spec.type));
    done = [wd = options_.watchdog, token,
            done = std::move(done)](const Result& r) {
      wd->disarm(token);
      done(r);
    };
  }
  // The request enters the system as an event so the creation is ordered
  // with everything else in simulated time.
  net_.queue().schedule_after(0, [this, spec, done = std::move(done)] {
    if (moot(spec)) {
      obs::count("requests.moot");
      if (obs::SpanSink* sink = obs::spans()) {
        obs::emit_span(instant_op_span(*sink, Outcome::kMoot, spec.subject));
      }
      done(Result{Outcome::kMoot});
      return;
    }
    const NodeId arrival = spec.type == RequestSpec::Type::kAddInternal
                               ? tree_.parent(spec.subject)
                               : spec.subject;
    const AgentId id = ids_.next();
    Agent& a = agents_.create(id);
    a.id = id;
    a.origin = arrival;
    a.at = arrival;
    a.request = spec;
    a.done = std::move(done);
    // Open the op span at creation time, parented to whatever causal
    // context is active when this event fires (a traced request driving
    // the submit, or nothing — then the op roots a fresh trace).
    if (obs::SpanSink* sink = obs::spans()) {
      const obs::SpanContext parent = obs::current_span();
      a.span.trace = parent.trace != obs::kNoTrace ? parent.trace
                                                   : sink->new_trace();
      a.span.span = sink->open(a.span.trace);
      a.span_parent =
          parent.trace != obs::kNoTrace ? parent.span : obs::kNoSpan;
      a.span_begin = net_.queue().now();
    }
    obs::ScopedSpanContext span_scope(a.span);
    on_enter(a, arrival, kNoNode);
  });
}

bool DistributedController::moot(const RequestSpec& spec) const {
  return !tree_.alive(spec.subject);
}

obs::Span DistributedController::instant_op_span(obs::SpanSink& sink,
                                                 Outcome outcome,
                                                 NodeId node) {
  const obs::SpanContext parent = obs::current_span();
  obs::Span s;
  s.trace = parent.trace != obs::kNoTrace ? parent.trace : sink.new_trace();
  s.id = sink.open(s.trace);
  s.parent = parent.trace != obs::kNoTrace ? parent.span : obs::kNoSpan;
  s.kind = obs::SpanKind::kOp;
  s.op = static_cast<std::uint8_t>(outcome);
  s.label = outcome_name(outcome);
  s.node = node;
  s.begin = net_.queue().now();
  s.end = s.begin;
  return s;
}

// ---- movement helpers ----------------------------------------------------------

sim::Message DistributedController::hop_message(const Agent& a) const {
  // The hop carries exactly the agent state §4.3 says rides the taxi: the
  // two distance counters, the Bag level, and the phase/flag bits.  Its
  // measured encoding is what the network charges — Lemma 4.5's O(log N)
  // claim is checked against these bits, not a formula.
  return sim::Message::agent_hop(a.id, a.distance, a.top_distance,
                                 a.bag_level,
                                 static_cast<std::uint8_t>(a.phase),
                                 a.carrying != kNoPackage);
}

void DistributedController::hop_up(Agent& a) {
  ++messages_;
  static thread_local obs::CounterHandle hops("agent.hops");
  static thread_local obs::CounterHandle climb_steps("filler_search.steps");
  hops.add();
  if (a.phase == Phase::kClimb) climb_steps.add();
  obs::emit(obs::TraceEvent{obs::EventKind::kAgentHop, net_.queue().now(),
                            a.at, a.id, 0});
  if (options_.debug_trace) a.history += " up" + std::to_string(a.at);
  a.distance += 1;
  taxi_.hop_up(a.id, a.at, hop_message(a));
}

void DistributedController::hop_down(Agent& a, NodeId to) {
  ++messages_;
  static thread_local obs::CounterHandle hops("agent.hops");
  hops.add();
  // A hop with a package in the Bag is a package move (Lemma 3.3's unit).
  static thread_local obs::CounterHandle moves("moves.total");
  if (a.carrying != kNoPackage) moves.add();
  obs::emit(obs::TraceEvent{obs::EventKind::kAgentHop, net_.queue().now(),
                            a.at, a.id, 1});
  if (options_.debug_trace) a.history += " dn" + std::to_string(a.at) + ">" + std::to_string(to);
  DYNCON_INVARIANT(a.distance >= 1, "hop_down below the origin");
  a.distance -= 1;
  taxi_.hop_down(a.id, a.at, to, hop_message(a));
}

DistributedController::Agent& DistributedController::agent(AgentId id) {
  Agent* a = agents_.find(id);
  DYNCON_INVARIANT(a != nullptr, "unknown agent id");
  return *a;
}

void DistributedController::resume_waiter(const agent::Waiter& w,
                                          NodeId at) {
  taxi_.resume_local(w.agent, at, w.came_from);
}

void DistributedController::resume_waiter_tail(const agent::Waiter& w,
                                               NodeId at) {
  // Inline the waiter only when the queue proves it would have fired next
  // anyway: a +0 schedule lands at the current tick with the next fresh
  // seq, so if nothing else is pending at this tick (and all in-flight
  // messages ride >= 1-tick links), the scheduled continuation would run
  // immediately after the current event — which is exactly where we are.
  // The depth cap turns a pathological wave into plain scheduling instead
  // of deep recursion; scheduling is always the conservative fallback.
  constexpr std::uint32_t kMaxChain = 128;
  sim::EventQueue& q = net_.queue();
  if (!options_.batch_grants || resume_depth_ >= kMaxChain ||
      net_.guarded_dispatch() || (!q.empty() && q.next_time() <= q.now())) {
    ++resume_stats_.scheduled;
    resume_waiter(w, at);
    return;
  }
  ++resume_stats_.inlined;
  ++resume_depth_;
  resume_stats_.max_chain =
      std::max<std::uint64_t>(resume_stats_.max_chain, resume_depth_);
  q.count_extra_fired(1);  // the event this inline call replaces
  on_arrival(w.agent, at, w.came_from);
  --resume_depth_;
  if (resume_depth_ == 0) flush_grants();
}

void DistributedController::note_grant() {
  ++pending_grants_;
  if (resume_depth_ == 0) flush_grants();
}

void DistributedController::flush_grants() {
  if (pending_grants_ == 0) return;
  static thread_local obs::CounterHandle granted_c("permits.granted");
  granted_c.add(pending_grants_);
  pending_grants_ = 0;
}

// ---- arrival dispatch ------------------------------------------------------------

void DistributedController::on_arrival(AgentId id, NodeId node,
                                       NodeId came_from) {
  Agent* ap = agents_.find(id);
  if (ap == nullptr) {
    // Only a crash can leave a dangling delivery (an ARQ retransmission
    // that bridged the outage after its agent was force-finalized); any
    // other miss is a real bug.
    DYNCON_INVARIANT(dead_ids_.count(id) != 0, "unknown agent id");
    static thread_local obs::CounterHandle stale("crash.stale_arrivals");
    stale.add();
    return;
  }
  Agent& a = *ap;
  if (doomed_.count(id) != 0) {
    // The failure detector caught up with a doomed lock holder: its next
    // arrival is where it dies.
    a.at = node;
    kill_agent(id);
    return;
  }
  // Re-assert the agent's own causal context: a resumed waiter runs inside
  // the resuming agent's delivery continuation and would otherwise charge
  // its sends to the wrong op span.
  obs::ScopedSpanContext span_scope(a.span);
  a.at = node;
  if (options_.debug_trace) a.history += " @" + std::to_string(node) + "/" + std::to_string(a.distance);
  switch (a.phase) {
    case Phase::kStart:
    case Phase::kClimb:
      on_enter(a, node, came_from);
      return;
    case Phase::kProcDown:
      // §5.3: a node observes the permits arriving from above (the hook
      // fires only on real hops, matching the centralized accounting,
      // which excludes the package's starting host).
      if (options_.on_pass_down && a.carrying != kNoPackage) {
        options_.on_pass_down(node, packages_.get(a.carrying).size);
      }
      on_proc_down(a, node);
      return;
    case Phase::kReturnUp:
      on_return_up(a, node);
      return;
    case Phase::kUnlockDown:
      unlock_step(a, node);
      return;
    case Phase::kRejectDown:
      reject_step(a, node);
      return;
    case Phase::kAbortDown:
      abort_step(a, node);
      return;
  }
}

void DistributedController::on_enter(Agent& a, NodeId node,
                                     NodeId came_from) {
  if (boards_.locked(node)) {
    static thread_local obs::CounterHandle lock_waits("agent.lock_waits");
    lock_waits.add();
    obs::emit(obs::TraceEvent{obs::EventKind::kLockWait, net_.queue().now(),
                              node, a.id, 0});
    if (options_.debug_trace) a.history += " W" + std::to_string(node);
    boards_.enqueue(node, a.id, came_from);
    return;
  }
  boards_.lock(node, a.id, came_from);
  ++a.locks_held;
  if (options_.debug_trace) a.history += " L" + std::to_string(node) + "@" + std::to_string(a.distance);
  evaluate(a);
}

void DistributedController::evaluate(Agent& a) {
  const NodeId node = a.at;

  // A queued request whose subject vanished while it waited has lost its
  // meaning (§4.2).  The subject cannot die once we hold the origin's lock
  // (its remover would have to pass through here), so checking when the
  // origin lock is (re)acquired is sufficient.
  if (a.distance == 0 && moot(a.request)) {
    --a.locks_held;
    if (options_.debug_trace) a.history += " UO" + std::to_string(node);
    const auto waiter = boards_.unlock(node, a.id);
    a.result = Result{Outcome::kMoot};
    obs::count("requests.moot");
    obs::emit(obs::TraceEvent{obs::EventKind::kRequestMoot,
                              net_.queue().now(), node, a.id, 0});
    finish(a);  // `a` is gone after this
    if (waiter) resume_waiter_tail(*waiter, node);
    return;
  }

  // Item 1b: a reject node sends the agent home, rejecting.
  if (packages_.has_reject(node)) {
    a.phase = Phase::kRejectDown;
    reject_step(a, node);
    return;
  }

  // Item 2: a static package at the *origin* grants on the spot.
  if (a.distance == 0) {
    if (PackageId st = packages_.find_static(node); st != kNoPackage) {
      a.result.outcome = Outcome::kGranted;
      a.result.serial = packages_.consume_one(st);
      ++granted_;
      note_grant();
      obs::emit(obs::TraceEvent{obs::EventKind::kPermitGranted,
                                net_.queue().now(), node,
                                a.result.serial.value_or(~0ULL), storage_});
      apply_event_at_grant(a);
      terminate_at_origin(a);
      return;
    }
  }

  // Item 3: filler check — the windows partition distances by level, so
  // only one level can match at this node.
  const std::uint32_t lvl = params_.creation_level(a.distance);
  if (PackageId p = packages_.find_mobile_of_level(node, lvl);
      p != kNoPackage) {
    begin_proc(a, p, lvl);
    return;
  }

  if (node == tree_.root()) {
    root_logic(a);
    return;
  }

  a.phase = Phase::kClimb;
  hop_up(a);
}

// ---- item 3c: at the root ------------------------------------------------------

void DistributedController::root_logic(Agent& a) {
  const std::uint32_t j = params_.creation_level(a.distance);
  const std::uint64_t need = params_.mobile_size(j);

  if (exhausted_ || storage_ < need) {
    if (options_.mode == Mode::kExhaustSignal) {
      exhausted_ = true;
      a.result.outcome = Outcome::kExhausted;
      obs::count("requests.exhausted");
      obs::emit(obs::TraceEvent{obs::EventKind::kRequestExhausted,
                                net_.queue().now(), a.origin, a.id, 0});
      a.phase = Phase::kAbortDown;
      abort_step(a, a.at);
      return;
    }
    if (!wave_) start_reject_flood();
    a.phase = Phase::kRejectDown;
    reject_step(a, a.at);
    return;
  }

  Interval serials;
  if (!storage_serials_.empty()) serials = storage_serials_.take_low(need);
  storage_ -= need;
  const PackageId p = packages_.create_mobile(tree_.root(), j, need, serials);
  begin_proc(a, p, j);
}

// ---- Proc: carry, split, grant ----------------------------------------------------

void DistributedController::begin_proc(Agent& a, PackageId p,
                                       std::uint32_t level) {
  a.top_distance = a.distance;
  if (options_.debug_trace) a.history += " PROC@" + std::to_string(a.distance) + "lvl" + std::to_string(level);
  if (domains_) domains_->drop(p);  // canceled: the package is being moved
  packages_.pick_up(p);
  a.carrying = p;
  a.bag_level = level;
  a.phase = Phase::kProcDown;
  on_proc_down(a, a.at);
}

void DistributedController::on_proc_down(Agent& a, NodeId node) {
  const std::uint64_t target =
      a.bag_level > 0 ? params_.uk_distance(a.bag_level - 1) : 0;
  if (a.distance > target) {
    const NodeId down = boards_.down_child(node);
    if (down == kNoNode) {
      throw InvariantError(
          "down pointer missing on locked path: agent=" +
          std::to_string(a.id) + " node=" + std::to_string(node) +
          " origin=" + std::to_string(a.origin) +
          " dist=" + std::to_string(a.distance) +
          " top=" + std::to_string(a.top_distance) +
          " bag=" + std::to_string(a.bag_level) +
          " locked=" + std::to_string(boards_.locked(node)) +
          " locked_by=" + std::to_string(boards_.locked_by(node)) +
          " type=" + std::to_string(static_cast<int>(a.request.type)));
    }
    hop_down(a, down);
    return;
  }
  DYNCON_INVARIANT(a.distance == target, "overshot u_k on the way down");

  if (a.bag_level == 0) {
    DYNCON_INVARIANT(node == a.origin, "level-0 delivery away from origin");
    deliver_grant(a);
    return;
  }

  // This node is u_{bag_level-1}: split, leave one half, carry the other.
  packages_.put_down(a.carrying, node);
  auto [stay, go] = packages_.split_mobile(a.carrying);
  if (domains_) {
    // Domain of the staying level-(k-1) package: the 2^(k-2)*psi nodes
    // immediately below this node on the (locked, hence stable) path to
    // the origin.  Analysis-only bookkeeping, no messages (paper §3.2).
    const std::uint64_t dsize = params_.domain_size(a.bag_level - 1);
    DYNCON_INVARIANT(dsize <= a.distance, "domain would overrun the path");
    std::vector<NodeId> dom;
    dom.reserve(dsize);
    for (std::uint64_t i = 1; i <= dsize; ++i) {
      dom.push_back(tree_.ancestor_at(a.origin, a.distance - i));
    }
    domains_->assign(stay, std::move(dom));
  }
  packages_.pick_up(go);
  a.carrying = go;
  a.bag_level -= 1;

  const NodeId down = boards_.down_child(node);
  DYNCON_INVARIANT(down != kNoNode, "down pointer missing at u_k");
  hop_down(a, down);
}

void DistributedController::deliver_grant(Agent& a) {
  packages_.put_down(a.carrying, a.origin);
  packages_.make_static(a.carrying);
  a.result.outcome = Outcome::kGranted;
  a.result.serial = packages_.consume_one(a.carrying);
  a.carrying = kNoPackage;
  ++granted_;
  note_grant();
  obs::emit(obs::TraceEvent{obs::EventKind::kPermitGranted,
                            net_.queue().now(), a.origin,
                            a.result.serial.value_or(~0ULL), storage_});
  // "The requested event takes place when the request is granted" (item
  // 2): applying it here, while every lock from the origin to the topmost
  // node is still held, is what makes the serialization of Lemmas 4.3-4.5
  // airtight — in particular no other agent can see the subject between
  // its own moot check and its grant.
  apply_event_at_grant(a);

  if (a.top_distance == 0) {
    // The filler was the origin itself; nothing to unlock above.
    terminate_at_origin(a);
    return;
  }
  a.phase = Phase::kReturnUp;
  hop_up(a);
}

void DistributedController::apply_event_at_grant(Agent& a) {
  if (!options_.apply_events) return;
  const NodeId origin = a.origin;
  switch (a.request.type) {
    case RequestSpec::Type::kEvent:
      return;
    case RequestSpec::Type::kAddLeaf:
      a.result.new_node = tree_.add_leaf(a.request.subject);
      obs::emit(obs::TraceEvent{obs::EventKind::kLinkAdded,
                                net_.queue().now(), a.result.new_node,
                                a.request.subject, 0});
      return;
    case RequestSpec::Type::kAddInternal: {
      // The insertion always splits the edge between the origin (which we
      // hold locked) and its child toward the subject.  Concurrent
      // insertions between submit time and now may have put other nodes
      // between that child and the originally named subject; splitting any
      // other edge would mutate a path segment some other agent has
      // locked, which is exactly the race the locking discipline exists to
      // prevent.
      DYNCON_INVARIANT(
          tree_.is_ancestor(origin, a.request.subject) &&
              origin != a.request.subject,
          "add-internal subject is not a proper descendant of the origin");
      NodeId child = a.request.subject;
      while (tree_.parent(child) != origin) child = tree_.parent(child);
      const NodeId m = tree_.add_internal_above(child);
      a.result.new_node = m;
      obs::emit(obs::TraceEvent{obs::EventKind::kLinkAdded,
                                net_.queue().now(), m, origin, 0});
      // Graceful insertion handshake: at most one agent holds `child`'s
      // lock and has already counted the child->origin hop (it is waiting
      // in the origin's queue).  The new node m is spliced into that
      // agent's locked path: m starts out locked by it with the down
      // pointer to `child`, the agent's distance grows by the new edge,
      // and its future lock of the origin records m as the arrival child.
      // queue_mut's reference stays valid while lock(m, ...) grows the
      // columns (deque-of-deques stability).
      for (auto& w : boards_.queue_mut(origin)) {
        if (w.came_from != child) continue;
        Agent& qa = agent(w.agent);
        qa.distance += 1;
        boards_.lock(m, qa.id, child);
        ++qa.locks_held;
        if (options_.debug_trace) qa.history += " SPLICE" + std::to_string(m);
        w.came_from = m;
      }
      // The splice rewrites waiter entries and a parked agent's distance
      // directly (the set_observer caveat): journal the origin's board.
      boards_.mark_dirty(origin);
      return;
    }
    case RequestSpec::Type::kRemove: {
      DYNCON_INVARIANT(a.request.subject == origin,
                       "remove request away from its subject");
      boards_.release_for_removal(origin, a.id);
      --a.locks_held;
      if (options_.debug_trace) a.history += " RL" + std::to_string(origin);
      const NodeId parent = tree_.parent(origin);
      obs::emit(obs::TraceEvent{obs::EventKind::kLinkRemoved,
                                net_.queue().now(), origin, parent, 0});

      // Requests waiting at the dying node: requests about the node itself
      // lose their meaning; everything else moves to the parent with its
      // distance intact (the path contracts by exactly the hop it
      // counted).
      agent::WhiteboardManager::Queue& q = boards_.queue_mut(origin);
      agent::WhiteboardManager::Queue kept;
      std::vector<AgentId> moot_ids;
      for (const auto& w : q) {
        Agent& qa = agent(w.agent);
        if (qa.origin == origin) {
          const auto t = qa.request.type;
          if (t == RequestSpec::Type::kRemove ||
              t == RequestSpec::Type::kAddLeaf) {
            moot_ids.push_back(w.agent);
            continue;
          }
          qa.origin = parent;
          if (t == RequestSpec::Type::kEvent) qa.request.subject = parent;
        }
        kept.push_back(w);
      }
      q = std::move(kept);
      boards_.mark_dirty(origin);

      const std::size_t npkgs = packages_.move_all(origin, parent);
      const auto evict = boards_.evict_to_parent(origin, parent);

      // Graceful-deletion data handoff: O(deg(v) + packages + queue)
      // messages of O(log N) bits (§4.4.1).
      const std::uint64_t handoff =
          tree_.children(origin).size() + npkgs + evict.moved + 1;
      messages_ += handoff;
      // Each handoff record references the dying node; the prototype's
      // measured size is what every modeled message is charged.
      net_.charge(sim::Message::data_move(origin), handoff);

      tree_.remove_node(origin);
      // The evicted queue now lives in the parent's journal entry; drop the
      // dead node's slot.
      if (durable_) durable_->erase(origin);

      for (AgentId mid : moot_ids) {
        Agent& ma = agent(mid);
        ma.result = Result{Outcome::kMoot};
        finish(ma);
      }
      // The parent can only be unlocked if we never climbed (a grant from
      // a static package at the origin); otherwise we hold it ourselves.
      if (evict.resume) resume_waiter(*evict.resume, parent);

      // The agent itself relocates: its origin is gone, the path above
      // contracted by exactly one hop.
      a.origin = parent;
      a.at = parent;
      a.distance = 0;
      if (a.top_distance > 0) a.top_distance -= 1;
      return;
    }
  }
}

void DistributedController::on_return_up(Agent& a, NodeId node) {
  if (a.distance < a.top_distance) {
    hop_up(a);
    return;
  }
  a.phase = Phase::kUnlockDown;
  unlock_step(a, node);
}

void DistributedController::unlock_step(Agent& a, NodeId node) {
  if (node == a.origin) {
    terminate_at_origin(a);
    return;
  }
  const NodeId down = boards_.down_child(node);
  DYNCON_INVARIANT(down != kNoNode, "down pointer missing on unlock walk");
  --a.locks_held;
  if (options_.debug_trace) a.history += " U" + std::to_string(node);
  const auto waiter = boards_.unlock(node, a.id);
  hop_down(a, down);
  if (waiter) resume_waiter_tail(*waiter, node);
}

// ---- rejects -----------------------------------------------------------------

void DistributedController::reject_step(Agent& a, NodeId node) {
  if (!packages_.has_reject(node)) packages_.create_reject(node);
  if (node == a.origin) {
    a.result.outcome = Outcome::kRejected;
    ++rejects_;
    obs::count("permits.rejected");
    obs::emit(obs::TraceEvent{obs::EventKind::kRequestRejected,
                              net_.queue().now(), node, a.id, 0});
    terminate_at_origin(a);
    return;
  }
  const NodeId down = boards_.down_child(node);
  DYNCON_INVARIANT(down != kNoNode, "down pointer missing on reject walk");
  --a.locks_held;
  if (options_.debug_trace) a.history += " RU" + std::to_string(node);
  const auto waiter = boards_.unlock(node, a.id);
  hop_down(a, down);
  if (waiter) resume_waiter_tail(*waiter, node);
}

void DistributedController::abort_step(Agent& a, NodeId node) {
  if (node == a.origin) {
    terminate_at_origin(a);
    return;
  }
  const NodeId down = boards_.down_child(node);
  DYNCON_INVARIANT(down != kNoNode, "down pointer missing on abort walk");
  --a.locks_held;
  if (options_.debug_trace) a.history += " AU" + std::to_string(node);
  const auto waiter = boards_.unlock(node, a.id);
  hop_down(a, down);
  if (waiter) resume_waiter_tail(*waiter, node);
}

void DistributedController::start_reject_flood() {
  wave_ = true;
  exhausted_ = true;
  obs::count("wave.count");
  obs::emit(obs::TraceEvent{obs::EventKind::kWaveStart, net_.queue().now(),
                            tree_.root(), tree_.size(), 0});
  boards_.set_flooded(tree_.root(), true);
  boards_.mark_dirty(tree_.root());
  if (!packages_.has_reject(tree_.root())) {
    packages_.create_reject(tree_.root());
  }
  flood_fanout(tree_.root());
}

void DistributedController::flood_fanout(NodeId from) {
  for (NodeId c : tree_.children(from)) {
    ++messages_;
    net_.send(from, c, sim::Message::reject_wave(), [this, c] {
                if (!tree_.alive(c)) return;
                if (boards_.flooded(c)) return;
                boards_.set_flooded(c, true);
                boards_.mark_dirty(c);
                if (!packages_.has_reject(c)) packages_.create_reject(c);
                flood_fanout(c);
              });
  }
}

// ---- termination (the atomic step of Lemma 4.3's serialization) -------------------

void DistributedController::terminate_at_origin(Agent& a) {
  // Events were already applied at grant time (apply_event_at_grant);
  // termination only releases the origin's lock — unless a granted removal
  // already released everything (the origin is gone and the agent stands
  // relocated at its old parent with no remaining climb).  The dequeued
  // waiter resumes at the tail, after finish() delivered the verdict: the
  // tail position is what lets resume_waiter_tail run it inline.
  std::optional<agent::Waiter> waiter;
  const NodeId origin = a.origin;
  if (a.locks_held > 0) {
    --a.locks_held;
    if (options_.debug_trace) a.history += " UO" + std::to_string(origin);
    waiter = boards_.unlock(origin, a.id);
  }
  finish(a);  // `a` is gone after this
  if (waiter) resume_waiter_tail(*waiter, origin);
}

void DistributedController::finish(Agent& a) {
  if (a.locks_held != 0) {
    throw InvariantError("agent finishing with locks held: " +
                         std::to_string(a.locks_held) + " agent=" +
                         std::to_string(a.id) + " phase=" +
                         std::to_string(static_cast<int>(a.phase)) +
                         " type=" +
                         std::to_string(static_cast<int>(a.request.type)) +
                         " origin=" + std::to_string(a.origin) +
                         " top=" + std::to_string(a.top_distance) +
                         " outcome=" +
                         outcome_name(a.result.outcome) + " hist:" +
                         a.history);
  }
  if (obs::SpanSink* sink = obs::spans();
      sink != nullptr && a.span.trace != obs::kNoTrace) {
    obs::Span s;
    s.trace = a.span.trace;
    s.id = a.span.span;
    s.parent = a.span_parent;
    s.kind = obs::SpanKind::kOp;
    s.op = static_cast<std::uint8_t>(a.result.outcome);
    s.label = outcome_name(a.result.outcome);
    s.node = a.origin;
    s.begin = a.span_begin;
    s.end = net_.queue().now();
    sink->emit(s);
  }
  const Result res = a.result;
  Callback done = std::move(a.done);
  agents_.erase(a.id);
  if (done) done(res);
}

// ---- crash faults and recovery (PROTOCOL.md §9) ----------------------------------

void DistributedController::on_crash(NodeId v) {
  if (options_.durability == agent::Durability::kDurable) {
    // Nothing is lost: the journal is the board, and the outage itself is
    // bridged by the reliable channel's retransmissions.
    return;
  }
  if (!tree_.alive(v)) return;
  const agent::WhiteboardManager::Queue& q = boards_.queue(v);
  if (!boards_.locked(v) && q.empty() && !boards_.flooded(v)) {
    return;  // blank board: the crash destroys nothing
  }
  const AgentId holder = boards_.locked_by(v);
  std::vector<AgentId> parked;
  parked.reserve(q.size());
  for (const auto& w : q) parked.push_back(w.agent);
  boards_.wipe(v);

  if (holder != agent::kNoAgent) {
    // The holder itself is elsewhere (its locked path runs through v), but
    // its lock — and the down pointer its return walk depends on —
    // evaporated with the board.  It is doomed: the failure detector kills
    // it at its next arrival, or the orphan-lock release wave collects it.
    Agent& h = agent(holder);
    DYNCON_INVARIANT(h.locks_held >= 1, "crashed holder held no locks");
    --h.locks_held;
    doomed_.insert(holder);
    static thread_local obs::CounterHandle doomed("crash.holders_doomed");
    doomed.add();
  }
  // Waiters parked at v *are* whiteboard state — they die with it, in
  // queue order so the kill sequence is deterministic.
  for (AgentId id : parked) kill_agent(id);
  // A doomed holder that is itself parked at another node will never
  // arrive anywhere on its own; collect it now rather than leaving it to
  // a release wave that may not be wired up.
  if (holder != agent::kNoAgent && doomed_.count(holder) != 0) {
    for (NodeId u : tree_.alive_nodes()) {
      bool found = false;
      for (const auto& w : boards_.queue(u)) {
        found = found || w.agent == holder;
      }
      if (found) {
        kill_agent(holder);
        break;
      }
    }
  }
}

void DistributedController::on_restart(NodeId v) {
  if (options_.durability != agent::Durability::kDurable) return;
  if (!tree_.alive(v) || durable_ == nullptr || !durable_->has(v)) return;
  // Replay the journal.  The live board doubles as the model answer: the
  // decoded snapshot must reproduce it exactly, which proves both codec
  // fidelity and dirty-tracking completeness — a missed mark_dirty surfaces
  // here as a loud divergence, not as silent corruption.
  const agent::BoardSnapshot decoded = durable_->restore(v);
  DYNCON_INVARIANT(decoded == snapshot_board(v),
                   "durable journal diverged from the live whiteboard");
  agent::WhiteboardManager::Queue q;
  for (const agent::ParkedAgent& p : decoded.queue) {
    q.push_back(agent::Waiter{p.agent, p.came_from});
  }
  boards_.restore(v, decoded.locked ? decoded.locked_by : agent::kNoAgent,
                  decoded.down_child, decoded.flooded, std::move(q));
  static thread_local obs::CounterHandle restored("recovery.boards_restored");
  restored.add();
  static thread_local obs::CounterHandle reinc("recovery.agents_reincarnated");
  reinc.add(decoded.queue.size());
  if (obs::SpanSink* sink = obs::spans()) {
    obs::Span s;
    s.trace = sink->new_trace();
    s.id = obs::kRootSpanId;
    s.kind = obs::SpanKind::kRecovery;
    s.node = v;
    s.begin = net_.queue().now();
    s.end = s.begin;
    s.label = "restore";
    sink->emit(s);
  }
}

bool DistributedController::crash_recover() {
  bool acted = false;
  while (!doomed_.empty()) {
    kill_agent(*doomed_.begin());
    acted = true;
  }
  if (acted) obs::count("recovery.release_waves");
  return acted ||
         (options_.crashes != nullptr && options_.crashes->any_down());
}

void DistributedController::kill_agent(AgentId id) {
  doomed_.erase(id);
  Agent* ap = agents_.find(id);
  DYNCON_INVARIANT(ap != nullptr, "killing an unknown agent");
  Agent& a = *ap;
  obs::ScopedSpanContext span_scope(a.span);
  // Release every lock it still holds and pull it out of any queue it is
  // parked in; alive_nodes() fixes a deterministic sweep order.
  for (NodeId v : tree_.alive_nodes()) {
    // The locked_by column scan is the SoA payoff: one POD load per node.
    if (boards_.locked_by(v) == id) {
      DYNCON_INVARIANT(a.locks_held >= 1, "orphan lock without accounting");
      --a.locks_held;
      static thread_local obs::CounterHandle released(
          "recovery.orphan_locks_released");
      released.add();
      auto waiter = boards_.unlock(v, id);
      if (waiter) resume_waiter(*waiter, v);
    }
    if (!boards_.queue(v).empty()) {
      agent::WhiteboardManager::Queue& q = boards_.queue_mut(v);
      const std::size_t before = q.size();
      agent::WhiteboardManager::Queue kept;
      for (const auto& w : q) {
        if (w.agent != id) kept.push_back(w);
      }
      if (kept.size() != before) {
        q = std::move(kept);
        boards_.mark_dirty(v);
      }
    }
  }
  // A carried package is rescued as a static package where the agent
  // stood: statics need no domain (Claim 3.1), so the permits stay
  // grantable instead of leaking from the M budget.
  if (a.carrying != kNoPackage) {
    packages_.put_down(a.carrying, a.at);
    packages_.make_static(a.carrying);
    a.carrying = kNoPackage;
    static thread_local obs::CounterHandle rescued(
        "recovery.packages_rescued");
    rescued.add();
  }
  if (a.result.outcome != Outcome::kGranted) {
    // The protocol made no promise yet; the verdict is a rejection flagged
    // for the wrappers' redrive logic.
    a.result = Result{Outcome::kRejected};
    a.result.crash_failed = true;
    obs::count("crash.requests_failed");
  }
  static thread_local obs::CounterHandle killed("crash.agents_killed");
  killed.add();
  dead_ids_.insert(id);
  finish(a);
}

agent::BoardSnapshot DistributedController::snapshot_board(NodeId v) const {
  agent::BoardSnapshot b;
  b.locked = boards_.locked(v);
  b.locked_by = boards_.locked_by(v);
  b.down_child = boards_.down_child(v);
  b.flooded = boards_.flooded(v);
  const agent::WhiteboardManager::Queue& wq = boards_.queue(v);
  b.queue.reserve(wq.size());
  for (const auto& w : wq) {
    const Agent* ap = agents_.find(w.agent);
    DYNCON_INVARIANT(ap != nullptr, "parked agent not in agent table");
    const Agent& a = *ap;
    agent::ParkedAgent p;
    p.agent = w.agent;
    p.came_from = w.came_from;
    p.origin = a.origin;
    p.distance = a.distance;
    p.phase = static_cast<std::uint8_t>(a.phase);
    p.req_type = static_cast<std::uint8_t>(a.request.type);
    p.req_subject = a.request.subject;
    b.queue.push_back(p);
  }
  return b;
}

// ---- accounting -----------------------------------------------------------------

std::uint64_t DistributedController::unused_permits() const {
  return storage_ + packages_.permits_in_packages();
}

std::uint64_t DistributedController::memory_bits(
    NodeId v, bool designer_port_model) const {
  const std::uint64_t logN = ceil_log2(std::max<std::uint64_t>(
      tree_.size(), 2));
  const std::uint64_t logU = ceil_log2(std::max<std::uint64_t>(
      params_.U(), 2));
  const std::uint64_t logM = ceil_log2(std::max<std::uint64_t>(
      params_.M(), 2));

  std::uint64_t bits = logM + 2 * logU + 8;  // M, W, U, state flag
  if (v == tree_.root()) bits += logM;       // the Storage variable

  // Mobile packages: per present level, a (level, count) pair.
  std::vector<std::uint64_t> level_seen(params_.max_level() + 1, 0);
  std::uint64_t static_permits = 0;
  for (PackageId p : packages_.at(v)) {
    const Package& pkg = packages_.get(p);
    if (pkg.kind == PackageKind::kMobile) {
      level_seen[pkg.level] = 1;
    } else if (pkg.kind == PackageKind::kStatic) {
      static_permits += pkg.size;
    } else {
      bits += 1;  // a reject package is one flag
    }
  }
  for (std::uint64_t seen : level_seen) {
    if (seen) bits += 2 * logU;  // level + count, each <= U
  }
  if (static_permits > 0) bits += logM;  // combined static permit count

  // The agent queue: O(log N) bits per waiting agent — or, in the
  // designer-port model, a single list-head pointer here with the entries
  // distributed among the children (§4.4.2).
  if (designer_port_model) {
    if (!boards_.queue(v).empty()) bits += logN;
  } else {
    bits += boards_.queue(v).size() *
            agent::agent_message_bits(tree_.size(), params_.max_level());
  }
  return bits;
}

std::string DistributedController::debug_agents() const {
  std::string out;
  agents_.for_each([&](const Agent& a) {
    out += "agent " + std::to_string(a.id) + " at=" + std::to_string(a.at) +
           " origin=" + std::to_string(a.origin) +
           " dist=" + std::to_string(a.distance) +
           " phase=" + std::to_string(static_cast<int>(a.phase)) +
           " type=" + std::to_string(static_cast<int>(a.request.type));
    out += " [node locked=" + std::to_string(boards_.locked(a.at)) +
           " by=" + std::to_string(static_cast<long long>(static_cast<std::int64_t>(
                        boards_.locked_by(a.at)))) +
           " queue=" + std::to_string(boards_.queue(a.at).size()) + "]\n";
  });
  return out;
}

// ---- synchronous facade ------------------------------------------------------------

DistributedSyncFacade::DistributedSyncFacade(sim::EventQueue& queue,
                                             DistributedController& ctrl)
    : queue_(queue), ctrl_(ctrl) {}

Result DistributedSyncFacade::run(const RequestSpec& spec) {
  Result out;
  bool fired = false;
  ctrl_.submit(spec, [&out, &fired](const Result& r) {
    out = r;
    fired = true;
  });
  while (!fired && !queue_.empty()) queue_.step();
  DYNCON_INVARIANT(fired, "request never completed");
  return out;
}

Result DistributedSyncFacade::request_event(NodeId u) {
  return run(RequestSpec{RequestSpec::Type::kEvent, u});
}

Result DistributedSyncFacade::request_add_leaf(NodeId parent) {
  return run(RequestSpec{RequestSpec::Type::kAddLeaf, parent});
}

Result DistributedSyncFacade::request_add_internal_above(NodeId child) {
  return run(RequestSpec{RequestSpec::Type::kAddInternal, child});
}

Result DistributedSyncFacade::request_remove(NodeId v) {
  return run(RequestSpec{RequestSpec::Type::kRemove, v});
}

std::uint64_t DistributedSyncFacade::cost() const {
  return ctrl_.messages_used();
}

std::uint64_t DistributedSyncFacade::permits_granted() const {
  return ctrl_.permits_granted();
}

}  // namespace dyncon::core

#pragma once

// Package domains (paper §3.2).
//
// Every mobile package is associated with a *domain*: a path of (possibly
// already deleted) nodes hanging below its host.  Domains exist purely for
// the liveness analysis — the algorithm never communicates about them — but
// this reproduction maintains them explicitly so property tests can check
// Claim 3.1's three invariants after every step:
//
//   1. the domain of a level-k package has exactly 2^(k-1) * psi members;
//   2. domains of same-level packages are pairwise disjoint;
//   3. the *alive* members of a domain form a downward path starting at a
//      child of the package's host.
//
// Update rules mirror the paper's Cases 2-5:
//   * formation (end of Proc): level-k package at u_k gets the 2^(k-1)*psi
//     nodes immediately below u_k toward u;
//   * add-leaf: no effect;
//   * add-internal u above a domain member: u joins that domain and the
//     bottommost alive member leaves it;
//   * node removal: the node stays in every domain it belonged to.
//
// Tracking is optional (benches turn it off); it costs O(domain size) per
// package formation.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/package.hpp"
#include "core/params.hpp"
#include "tree/dynamic_tree.hpp"

namespace dyncon::core {

/// Maintains and audits package domains.  Registered as a TreeObserver by
/// the owning controller.
class DomainTracker final : public tree::TreeObserver {
 public:
  DomainTracker(const tree::DynamicTree& tree, const Params& params,
                const PackageTable& packages);

  /// Assign the freshly formed level-k package `p` (hosted at u_k) its
  /// initial domain: `path` must list the domain members top-to-bottom.
  void assign(PackageId p, std::vector<NodeId> path);

  /// The package was canceled / split / made static: drop its domain.
  void drop(PackageId p);

  /// Domain of `p` in path order (alive and dead members); empty if none.
  [[nodiscard]] const std::vector<NodeId>& domain(PackageId p) const;

  // TreeObserver — Cases 3-5.
  void on_add_leaf(NodeId u, NodeId parent) override;
  void on_remove_leaf(NodeId u, NodeId parent) override;
  void on_add_internal(NodeId u, NodeId parent, NodeId child) override;
  void on_remove_internal(NodeId u, NodeId parent,
                          const std::vector<NodeId>& children) override;

  /// Check Claim 3.1's three invariants for every alive mobile package.
  /// Returns an empty string if all hold, else a description of the first
  /// violation.
  [[nodiscard]] std::string check_invariants() const;

 private:
  const tree::DynamicTree& tree_;
  const Params& params_;
  const PackageTable& packages_;

  std::unordered_map<PackageId, std::vector<NodeId>> domains_;
  /// node -> packages whose domain contains it (for Case 4 updates).
  std::unordered_map<NodeId, std::unordered_set<PackageId>> member_of_;
};

}  // namespace dyncon::core

#pragma once

// Permit/reject packages (paper §3.1).
//
// Packages are the only carriers of permits and rejects:
//
//   * a MOBILE package of level i holds exactly 2^i * phi permits and is
//     what the filler search looks for;
//   * a STATIC package holds 1..phi permits and can only grant requests at
//     its host node;
//   * a REJECT package stands for infinitely many rejects.
//
// Splitting a mobile package of level i >= 1 yields two level-(i-1)
// packages; a level-0 mobile package becomes static when delivered to the
// requesting node.  (The paper folds the latter into its description of the
// level-1 split; the two formulations produce identical states.)
//
// `PackageTable` owns every package of one controller instance and is the
// single point of truth for the paper's *move complexity*: every package
// move goes through it and is charged its hop distance; a graceful-deletion
// handoff (all packages of a node to its parent in one message) is charged
// one move, exactly as in Lemma 3.3's accounting.
//
// Packages optionally carry an Interval of permit serial numbers; the
// name-assignment protocol (§5.2) uses these, the plain controller leaves
// them empty.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/params.hpp"
#include "obs/metrics.hpp"
#include "util/ids.hpp"
#include "util/interval.hpp"

namespace dyncon::core {

using PackageId = std::uint64_t;
inline constexpr PackageId kNoPackage = static_cast<PackageId>(-1);

enum class PackageKind : std::uint8_t { kMobile, kStatic, kReject };

struct Package {
  PackageId id = kNoPackage;
  PackageKind kind = PackageKind::kMobile;
  NodeId host = kNoNode;
  std::uint64_t size = 0;   ///< permits (0 for reject packages)
  std::uint32_t level = 0;  ///< meaningful for mobile packages only
  Interval serials;         ///< optional serial-number payload
  bool alive = false;
};

/// All packages of one controller instance, plus move-complexity accounting.
class PackageTable {
 public:
  PackageTable() = default;

  // ---- creation ------------------------------------------------------------

  PackageId create_mobile(NodeId host, std::uint32_t level, std::uint64_t size,
                          Interval serials = {});
  PackageId create_static(NodeId host, std::uint64_t size,
                          Interval serials = {});
  PackageId create_reject(NodeId host);

  // ---- mutation --------------------------------------------------------------

  /// Move a package `hops` edges to `new_host`; charges `hops` moves.
  void move(PackageId p, NodeId new_host, std::uint64_t hops);

  /// Erase a mobile package from its host's whiteboard into an agent's Bag
  /// (distributed §4.3: "Erase P from w's whiteboard and put k inside the
  /// variable Bag").  The package stays alive with host kNoNode.
  void pick_up(PackageId p);

  /// Write a carried package onto `node`'s whiteboard.
  void put_down(PackageId p, NodeId node);

  [[nodiscard]] bool carried(PackageId p) const {
    return get(p).host == kNoNode;
  }

  /// Move *all* packages at `node` to `parent` in one message (graceful
  /// deletion); charges one move if any package moved.  Returns how many.
  std::size_t move_all(NodeId node, NodeId parent);

  /// Split a mobile package of level >= 1 into two of level-1 lower, at the
  /// same host.  Serial intervals (if any) are halved.  The original dies.
  std::pair<PackageId, PackageId> split_mobile(PackageId p);

  /// Convert a level-0 mobile package into a static one (same host/size).
  void make_static(PackageId p);

  /// Consume one permit from a static package; cancels it at size 0.
  /// Returns the granted permit's serial number if the package tracks them.
  std::optional<std::uint64_t> consume_one(PackageId p);

  /// Remove a package from the table.
  void cancel(PackageId p);

  // ---- queries ----------------------------------------------------------------

  [[nodiscard]] bool alive(PackageId p) const;
  [[nodiscard]] const Package& get(PackageId p) const;
  [[nodiscard]] const std::vector<PackageId>& at(NodeId node) const;

  [[nodiscard]] bool has_reject(NodeId node) const;
  [[nodiscard]] PackageId find_static(NodeId node) const;
  [[nodiscard]] PackageId find_mobile_of_level(NodeId node,
                                               std::uint32_t level) const;

  /// All alive packages (for audits).
  [[nodiscard]] std::vector<PackageId> all_alive() const;

  /// Total permits currently held in alive (non-reject) packages.
  [[nodiscard]] std::uint64_t permits_in_packages() const;

  // ---- hibernation images --------------------------------------------------

  /// One alive package, as recorded in an `Image`.
  struct Record {
    PackageId id = kNoPackage;
    PackageKind kind = PackageKind::kMobile;
    NodeId host = kNoNode;
    std::uint64_t size = 0;
    std::uint32_t level = 0;
    bool operator==(const Record&) const = default;
  };

  /// A complete, order-preserving snapshot of the table: `alive` lists
  /// packages grouped by host in ascending host order, preserving each
  /// host's whiteboard order (which find_static / find_mobile_of_level scan
  /// positionally, so it is semantically load-bearing).  `next_id` keeps
  /// the never-reused id space advancing across a hibernate cycle.
  struct Image {
    std::uint64_t next_id = 0;
    std::uint64_t moves = 0;
    std::vector<Record> alive;
    bool operator==(const Image&) const = default;
  };

  /// Capture the table into `out` (cleared first).  Requires that no
  /// package is carried in a Bag and none tracks serial intervals — true of
  /// every forest controller; the distributed layers never hibernate.
  void extract_image(Image& out) const;

  /// Rebuild a *default-constructed* table from an image.  Replays no
  /// creation/move paths, so `package.created` / `package.splits` /
  /// `moves.total` counters do not re-fire.
  void restore_image(const Image& img);

  /// Rough heap footprint in bytes (package array plus host-index nodes);
  /// an accounting estimate for `perf.mem.*`, not an allocator truth.
  [[nodiscard]] std::uint64_t approx_bytes() const;

  // ---- accounting ----------------------------------------------------------------

  [[nodiscard]] std::uint64_t move_complexity() const { return moves_; }
  void charge_moves(std::uint64_t n) {
    moves_ += n;
    static thread_local obs::CounterHandle moves("moves.total");
    moves.add(n);
  }

 private:
  Package& mut(PackageId p);
  void attach(PackageId p, NodeId host);
  void detach(PackageId p);

  std::vector<Package> packages_;
  std::unordered_map<NodeId, std::vector<PackageId>> by_host_;
  std::uint64_t moves_ = 0;
};

}  // namespace dyncon::core

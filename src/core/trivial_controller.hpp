#pragma once

// The trivial (M,0)-controller the paper uses as the naive yardstick:
// every request walks to the root and the permit (or reject) walks back,
// Omega(n) moves per request, Omega(nM) total (paper §1 intro).
//
// Supports the full dynamic model; used as the lower baseline in EXP3.

#include <cstdint>

#include "core/controller_iface.hpp"
#include "tree/dynamic_tree.hpp"

namespace dyncon::core {

class TrivialController final : public IController {
 public:
  TrivialController(tree::DynamicTree& tree, std::uint64_t M);

  Result request_event(NodeId u) override;
  Result request_add_leaf(NodeId parent) override;
  Result request_add_internal_above(NodeId child) override;
  Result request_remove(NodeId v) override;

  [[nodiscard]] std::uint64_t cost() const override { return cost_; }
  [[nodiscard]] std::uint64_t permits_granted() const override {
    return granted_;
  }
  [[nodiscard]] std::uint64_t rejects_delivered() const { return rejects_; }

 private:
  /// Round trip to the root; true iff a permit was obtained.
  bool fetch_permit(NodeId u);

  tree::DynamicTree& tree_;
  std::uint64_t storage_;
  std::uint64_t granted_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t cost_ = 0;
};

}  // namespace dyncon::core

#pragma once

// The iterated (M,W)-controller of Observation 3.4.
//
// To reach move complexity O(U log^2 U log(M/(W+1))), the base controller is
// run in iterations: iteration i uses parameters (M_i, M_i/2); when it first
// wishes to reject, the wrapper counts the L unused permits left in packages
// and storage, clears the data structure, and starts iteration i+1 with
// M_{i+1} = L.  Liveness of each iteration guarantees L <= M_i/2, so after
// O(log(M/(W+1))) iterations the leftover is within a constant factor of W
// and a final (M_i, W) iteration finishes the job.
//
// W = 0 (grant *exactly* M permits) follows the paper: run the (M,1)
// pipeline; if it ends one permit short, the trivial (1,0)-controller —
// a direct root-to-requester delivery — grants the last permit.
//
// In Mode::kExhaustSignal the wrapper reports kExhausted instead of starting
// a reject wave, which is what the terminating transform (Obs. 2.1) and the
// adaptive controller (Thm. 3.5) build on.

#include <cstdint>
#include <memory>

#include "core/centralized_controller.hpp"
#include "core/controller_iface.hpp"

namespace dyncon::core {

class IteratedController final : public IController {
 public:
  using Mode = CentralizedController::Mode;

  struct Options {
    Mode mode = Mode::kRejectWave;
    bool track_domains = true;
    /// Serial tracking is only supported when the first iteration is final
    /// (M <= 4*max(W,1)), which covers every application in §5.
    Interval serials;
    /// Forwarded to every base-controller iteration (§5.3).
    std::function<void(NodeId, std::uint64_t)> on_pass_down;
  };

  IteratedController(tree::DynamicTree& tree, std::uint64_t M, std::uint64_t W,
                     std::uint64_t U, Options options);
  IteratedController(tree::DynamicTree& tree, std::uint64_t M, std::uint64_t W,
                     std::uint64_t U)
      : IteratedController(tree, M, W, U, Options{}) {}

  Result request_event(NodeId u) override;
  Result request_add_leaf(NodeId parent) override;
  Result request_add_internal_above(NodeId child) override;
  Result request_remove(NodeId v) override;

  [[nodiscard]] std::uint64_t cost() const override;
  [[nodiscard]] std::uint64_t permits_granted() const override;

  [[nodiscard]] std::uint64_t M() const { return m_; }
  [[nodiscard]] std::uint64_t W() const { return w_; }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  /// True once every future request will be rejected (the pipeline is
  /// spent, or the final iteration has started its reject wave).
  [[nodiscard]] bool done() const {
    return done_ || phase_ == Phase::kDone ||
           (inner_ && inner_->reject_wave_started());
  }
  [[nodiscard]] std::uint64_t rejects_delivered() const { return rejects_; }

  /// Unused permits across the pipeline (root storage + packages).
  [[nodiscard]] std::uint64_t unused_permits() const;

  /// The active base controller (null once done), for audits.
  [[nodiscard]] const CentralizedController* inner() const {
    return inner_.get();
  }

 private:
  enum class Phase : std::uint8_t { kIterating, kFinal, kTrivial, kDone };

  template <typename Fn>
  Result dispatch(Fn&& submit, NodeId request_node);
  void start_iteration(std::uint64_t Mi);
  void advance();
  Result finish_rejecting();

  tree::DynamicTree& tree_;
  std::uint64_t m_, w_, u_;
  Options options_;

  std::unique_ptr<CentralizedController> inner_;
  Phase phase_ = Phase::kIterating;
  std::uint64_t iterations_ = 0;
  std::uint64_t trivial_storage_ = 0;  ///< W = 0 tail permits
  bool done_ = false;
  bool wave_charged_ = false;
  std::uint64_t cost_base_ = 0;     ///< cost of retired iterations
  std::uint64_t granted_base_ = 0;  ///< grants of retired iterations
  std::uint64_t rejects_ = 0;
};

}  // namespace dyncon::core

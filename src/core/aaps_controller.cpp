#include "core/aaps_controller.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log2.hpp"

namespace dyncon::core {

AAPSController::AAPSController(tree::DynamicTree& tree, std::uint64_t M,
                               std::uint64_t W, std::uint64_t U)
    : tree_(tree) {
  DYNCON_REQUIRE(M >= 1 && U >= 1, "M, U must be >= 1");
  top_level_ = ceil_log2(U) + 2;
  // Bin granularity scaled so that the sum of all bin capacities below the
  // top stays <= W (waste bound): ~U bins per level, top_level_ levels.
  const std::uint64_t denom = 2 * U * (top_level_ + 1);
  phi_ = std::max<std::uint64_t>(W / denom, 1);
  bins_[BinKey{tree_.root(), top_level_}] = M;  // the root storage
}

std::uint64_t AAPSController::capacity(std::uint32_t level) const {
  return sat_mul(pow2(level), phi_);
}

std::uint64_t AAPSController::pull(NodeId v, std::uint64_t depth,
                                   std::uint32_t level, std::uint64_t need) {
  // Note: no reference into bins_ may be held across the recursive pull
  // below — the map may rehash.
  const std::uint64_t have = bins_[BinKey{v, level}];
  if (have >= need || level == top_level_) return have;

  // Supervisor: the level-(l+1) bin at the nearest ancestor whose depth is
  // divisible by 2^(l+1).  Our depth is divisible by 2^l, so the supervisor
  // is either this node or the ancestor 2^l hops up... except near the
  // root, where the walk stops at depth 0.
  const std::uint64_t stride = pow2(level);
  const std::uint64_t up = std::min<std::uint64_t>(depth % (2 * stride),
                                                   depth);
  const NodeId w = tree_.ancestor_at(v, up);
  const std::uint64_t w_depth = depth - up;

  const std::uint64_t load = capacity(level);
  const std::uint64_t avail = pull(w, w_depth, level + 1, load);
  const std::uint64_t take = std::min(avail, load);
  if (take > 0) {
    bins_[BinKey{w, level + 1}] -= take;
    // The requesting agent walks up to the supervisor and the permits walk
    // back down (free when the supervisor is co-located).
    cost_ += 2 * up;
    return bins_[BinKey{v, level}] += take;
  }
  return bins_[BinKey{v, level}];
}

Result AAPSController::handle(NodeId u) {
  DYNCON_REQUIRE(tree_.alive(u), "request at dead node");
  if (wave_) {
    ++rejects_;
    return Result{Outcome::kRejected};
  }
  const std::uint64_t d = tree_.depth(u);
  if (pull(u, d, 0, 1) == 0) {
    wave_ = true;
    cost_ += tree_.size();  // reject broadcast, charged once
    ++rejects_;
    return Result{Outcome::kRejected};
  }
  --bins_[BinKey{u, 0}];
  ++granted_;
  return Result{Outcome::kGranted};
}

Result AAPSController::request_event(NodeId u) { return handle(u); }

Result AAPSController::request_add_leaf(NodeId parent) {
  Result r = handle(parent);
  if (r.granted()) r.new_node = tree_.add_leaf(parent);
  return r;
}

Result AAPSController::request_add_internal_above(NodeId) {
  throw ContractError(
      "AAPS controller supports leaf insertion only (dynamic model of [4])");
}

Result AAPSController::request_remove(NodeId) {
  throw ContractError(
      "AAPS controller supports leaf insertion only (dynamic model of [4])");
}

}  // namespace dyncon::core

#pragma once

// The (M, W, U) parameterization of the controller (paper §3.1).
//
// All derived constants of the algorithm live here so the centralized and
// distributed controllers provably use the same arithmetic:
//
//   phi  = max(floor(W / 2U), 1)            — static-package capacity
//   psi  = 4 * ceil(log2(U) + 2) * max(ceil(U / W), 1)
//                                           — the distance scale
//   mobile package of level i has size 2^i * phi
//   filler window for level j at distance d:
//        j = 0:  0     <= d <= 2 psi
//        j > 0:  2^j psi <  d <= 2^(j+1) psi
//   creation level j(u) = smallest j with d(u, root) <= 2^(j+1) psi
//   u_k sits at distance 3 * 2^(k-1) * psi above u
//   the domain of a level-k package has 2^(k-1) * psi nodes
//
// psi is a multiple of 4, so the half-power expressions (3*2^(k-1)*psi and
// 2^(k-1)*psi at k = 0) are exact integers.
//
// W = 0 is excluded here: the paper handles it by running an (M,1)-
// controller followed by the trivial (1,0)-controller (Obs. 3.4 / Thm. 4.7),
// which is what `IteratedController` / `DistributedIterated` implement.

#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/log2.hpp"

namespace dyncon::core {

/// Validated parameter set with the paper's derived constants.
class Params {
 public:
  /// Requires M >= 1, W >= 1, U >= 1.
  Params(std::uint64_t M, std::uint64_t W, std::uint64_t U);

  [[nodiscard]] std::uint64_t M() const { return m_; }
  [[nodiscard]] std::uint64_t W() const { return w_; }
  [[nodiscard]] std::uint64_t U() const { return u_; }

  [[nodiscard]] std::uint64_t phi() const { return phi_; }
  [[nodiscard]] std::uint64_t psi() const { return psi_; }

  /// Size of a mobile package of level `i` (2^i * phi).
  [[nodiscard]] std::uint64_t mobile_size(std::uint32_t level) const;

  /// Inverse of mobile_size; requires size = 2^i * phi exactly.
  [[nodiscard]] std::uint32_t level_of_size(std::uint64_t size) const;

  /// Upper bound on any package level (paper: <= log U + 1).
  [[nodiscard]] std::uint32_t max_level() const { return max_level_; }

  /// True iff a level-j package at hop distance `d` above the requesting
  /// node makes its host a filler node (paper §3.1 definition).
  [[nodiscard]] bool in_filler_window(std::uint32_t j, std::uint64_t d) const;

  /// Creation level at the root: smallest j with dist_to_root <= 2^(j+1) psi.
  [[nodiscard]] std::uint32_t creation_level(std::uint64_t dist_to_root) const;

  /// Distance from the requesting node u up to u_k: 3 * 2^(k-1) * psi.
  [[nodiscard]] std::uint64_t uk_distance(std::uint32_t k) const;

  /// Domain size of a level-k mobile package: 2^(k-1) * psi.
  [[nodiscard]] std::uint64_t domain_size(std::uint32_t k) const;

  /// ABLATION ONLY (bench/exp11): a copy of this parameter set with psi
  /// multiplied by num/den, clamped to a positive multiple of 4.  Scaling
  /// psi away from 1x voids the paper's waste analysis — the point of the
  /// ablation is to measure by how much.
  [[nodiscard]] Params with_psi_scale(std::uint64_t num,
                                      std::uint64_t den) const;

  [[nodiscard]] std::string str() const;

 private:
  std::uint64_t m_, w_, u_;
  std::uint64_t phi_, psi_;
  std::uint32_t max_level_;
};

}  // namespace dyncon::core

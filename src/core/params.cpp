#include "core/params.hpp"

#include <sstream>

namespace dyncon::core {

Params::Params(std::uint64_t M, std::uint64_t W, std::uint64_t U)
    : m_(M), w_(W), u_(U) {
  DYNCON_REQUIRE(M >= 1, "M must be >= 1");
  DYNCON_REQUIRE(W >= 1,
                 "W must be >= 1 (W = 0 is handled by the iterated wrapper)");
  DYNCON_REQUIRE(U >= 1, "U must be >= 1");

  phi_ = W / (2 * U);
  if (phi_ < 1) phi_ = 1;

  const std::uint64_t log_term = ceil_log2(U) + 2;  // ceil(log U) + 2
  const std::uint64_t ratio = ceil_div(U, W);
  psi_ = 4 * log_term * (ratio < 1 ? 1 : ratio);
  DYNCON_INVARIANT(psi_ % 4 == 0, "psi must be a multiple of 4");

  max_level_ = ceil_log2(U) + 2;  // paper: level <= log U + 1
}

std::uint64_t Params::mobile_size(std::uint32_t level) const {
  DYNCON_REQUIRE(level <= max_level_, "level out of range");
  return sat_mul(pow2(level), phi_);
}

std::uint32_t Params::level_of_size(std::uint64_t size) const {
  DYNCON_REQUIRE(size >= phi_ && size % phi_ == 0, "not a mobile size");
  const std::uint64_t q = size / phi_;
  DYNCON_REQUIRE(std::has_single_bit(q), "not a mobile size (power of two)");
  return floor_log2(q);
}

bool Params::in_filler_window(std::uint32_t j, std::uint64_t d) const {
  if (j == 0) return d <= 2 * psi_;
  if (j > 63) return false;
  const std::uint64_t lo = sat_mul(pow2(j), psi_);       // exclusive
  const std::uint64_t hi = sat_mul(pow2(j + 1), psi_);   // inclusive
  return lo < d && d <= hi;
}

std::uint32_t Params::creation_level(std::uint64_t dist_to_root) const {
  for (std::uint32_t j = 0;; ++j) {
    if (dist_to_root <= sat_mul(pow2(j + 1), psi_)) return j;
    DYNCON_INVARIANT(j <= max_level_,
                     "creation level exceeded max level; U bound violated?");
  }
}

std::uint64_t Params::uk_distance(std::uint32_t k) const {
  // 3 * 2^(k-1) * psi = 3 * (psi/2) * 2^k; psi is a multiple of 4.
  return sat_mul(3 * (psi_ / 2), pow2(k));
}

std::uint64_t Params::domain_size(std::uint32_t k) const {
  // 2^(k-1) * psi = (psi/2) * 2^k.
  return sat_mul(psi_ / 2, pow2(k));
}

Params Params::with_psi_scale(std::uint64_t num, std::uint64_t den) const {
  DYNCON_REQUIRE(num >= 1 && den >= 1, "bad psi scale");
  Params out = *this;
  std::uint64_t scaled = sat_mul(psi_, num) / den;
  scaled -= scaled % 4;  // keep the half-power expressions exact
  out.psi_ = std::max<std::uint64_t>(scaled, 4);
  return out;
}

std::string Params::str() const {
  std::ostringstream os;
  os << "(M=" << m_ << ",W=" << w_ << ",U=" << u_ << ",phi=" << phi_
     << ",psi=" << psi_ << ",maxlvl=" << max_level_ << ")";
  return os.str();
}

}  // namespace dyncon::core

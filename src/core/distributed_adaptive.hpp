#pragma once

// The unknown-U distributed (M,W)-controller (Theorem 4.9, Appendix A).
//
// Iteration i assumes U_i = 2 N_i and runs TWO terminating controllers in
// parallel over the same tree:
//
//   * the main terminating (M_i, W)-controller, which actually answers
//     requests and applies topological changes;
//   * a terminating (U_i/2, U_i/4)-controller that "counts only the
//     topological changes": every topological request must also obtain a
//     permit from it (its agents ignore the other controller's locks —
//     realized here by giving each instance its own whiteboards).
//
// When the counting controller terminates, between U_i/4 and U_i/2
// topological changes have happened, so the iteration rotates: both
// controllers drain and terminate, a broadcast/upcast counts N_{i+1} and
// Y_i and resets the structures, and iteration i+1 starts with
// M_{i+1} = M_i - Y_i and U_{i+1} = 2 N_{i+1}.  If the *main* controller
// terminates on its own, at most W permits are unused anywhere and the
// controller rejects from then on.

#include <cstdint>
#include <deque>
#include <memory>

#include "core/distributed_iterated.hpp"

namespace dyncon::core {

class DistributedAdaptive {
 public:
  using Callback = DistributedController::Callback;

  enum class Policy : std::uint8_t { kChangeCount, kSizeDoubling };

  struct Options {
    bool track_domains = true;
    /// Part 1 (default) rotates after ~U_i/4 changes with U_i = 2 N_i;
    /// part 2 sizes U_i by the maximum simultaneous node count seen so far
    /// (Thm. 3.5's second bound).
    Policy policy = Policy::kChangeCount;
    /// Armed at *this* wrapper's submit boundary — one token per request
    /// across rotations; not forwarded to the inner controllers.
    sim::Watchdog* watchdog = nullptr;
    /// Forwarded to both inner controllers (main + counting sidecar).
    bool allow_unreliable_transport = false;
    /// Crash stack, forwarded to both inner controllers; the wrapper's
    /// death probe sweeps both (see DistributedIterated::Options).
    sim::CrashDriver* crashes = nullptr;
    agent::Durability durability = agent::Durability::kVolatile;
    bool meter_persistence = false;
    std::uint32_t crash_redrives = 2;
  };

  DistributedAdaptive(sim::Network& net, tree::DynamicTree& tree,
                      std::uint64_t M, std::uint64_t W, Options options);
  DistributedAdaptive(sim::Network& net, tree::DynamicTree& tree,
                      std::uint64_t M, std::uint64_t W)
      : DistributedAdaptive(net, tree, M, W, Options{}) {}
  ~DistributedAdaptive();

  DistributedAdaptive(const DistributedAdaptive&) = delete;
  DistributedAdaptive& operator=(const DistributedAdaptive&) = delete;

  void submit(const RequestSpec& spec, Callback done);
  void submit_event(NodeId u, Callback done);
  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  [[nodiscard]] std::uint64_t messages_used() const;
  [[nodiscard]] std::uint64_t permits_granted() const;
  [[nodiscard]] std::uint64_t rejects_delivered() const { return rejects_; }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] std::uint64_t current_U() const { return ui_; }

 private:
  void start_iteration();
  void begin_rotation(bool main_exhausted);
  void finish_rotation(bool main_exhausted);
  void dispatch(const RequestSpec& spec, Callback done);
  void submit_to_main(const RequestSpec& spec, Callback done);
  void complete_async(Callback done, Result r);

  sim::Network& net_;
  tree::DynamicTree& tree_;
  Options options_;
  std::uint64_t w_;
  std::uint64_t mi_;
  std::uint64_t ui_ = 0;
  std::uint64_t max_n_ = 0;

  std::unique_ptr<DistributedTerminating> main_;
  std::unique_ptr<DistributedTerminating> counter_;
  bool rotating_ = false;
  bool done_ = false;
  bool wave_charged_ = false;
  std::uint64_t pending_drains_ = 0;
  std::deque<std::pair<RequestSpec, Callback>> pending_;
  std::uint64_t iterations_ = 0;
  std::uint64_t granted_base_ = 0;
  std::uint64_t messages_base_ = 0;
  std::uint64_t rejects_ = 0;
};

}  // namespace dyncon::core

#pragma once

// The terminating (M,W)-controller transform of Observation 2.1.
//
// A terminating controller never delivers rejects.  Instead, when the
// underlying (M,W)-controller would reject, the protocol *terminates*:
// it performs one broadcast-and-upcast over the tree (verifying that all
// granted events have occurred — instantaneous in the centralized setting),
// and from then on grants nothing.  At termination the number of granted
// permits m satisfies M - W <= m <= M.
//
// This is the building block the paper composes everything from: the
// adaptive controller's iterations (Thm. 3.5), size estimation (§5.1) and
// name assignment (§5.2) all run terminating controllers.

#include <cstdint>
#include <memory>

#include "core/iterated_controller.hpp"

namespace dyncon::core {

class TerminatingController final : public IController {
 public:
  struct Options {
    bool track_domains = true;
    Interval serials;
    /// Forwarded to the base controller (§5.3).
    std::function<void(NodeId, std::uint64_t)> on_pass_down;
  };

  TerminatingController(tree::DynamicTree& tree, std::uint64_t M,
                        std::uint64_t W, std::uint64_t U, Options options);
  TerminatingController(tree::DynamicTree& tree, std::uint64_t M,
                        std::uint64_t W, std::uint64_t U)
      : TerminatingController(tree, M, W, U, Options{}) {}

  Result request_event(NodeId u) override;
  Result request_add_leaf(NodeId parent) override;
  Result request_add_internal_above(NodeId child) override;
  Result request_remove(NodeId v) override;

  [[nodiscard]] std::uint64_t cost() const override;
  [[nodiscard]] std::uint64_t permits_granted() const override;

  [[nodiscard]] bool terminated() const { return terminated_; }

  /// Force termination now (used by wrappers that rotate iterations on a
  /// schedule of their own, e.g. the adaptive controller's Z_i counter).
  /// Charges the terminating broadcast/upcast and freezes the controller.
  void terminate_now();

  [[nodiscard]] const IteratedController& inner() const { return *inner_; }

 private:
  template <typename Fn>
  Result guard(Fn&& submit);

  tree::DynamicTree& tree_;
  std::unique_ptr<IteratedController> inner_;
  bool terminated_ = false;
  std::uint64_t control_cost_ = 0;
};

}  // namespace dyncon::core

#include "core/package.hpp"

#include <algorithm>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dyncon::core {

namespace {
const std::vector<PackageId> kEmpty;
}

PackageId PackageTable::create_mobile(NodeId host, std::uint32_t level,
                                      std::uint64_t size, Interval serials) {
  DYNCON_REQUIRE(serials.empty() || serials.size() == size,
                 "serial interval size must match package size");
  const PackageId id = packages_.size();
  packages_.push_back(
      Package{id, PackageKind::kMobile, host, size, level, serials, true});
  attach(id, host);
  static thread_local obs::CounterHandle created("package.created");
  created.add();
  return id;
}

PackageId PackageTable::create_static(NodeId host, std::uint64_t size,
                                      Interval serials) {
  DYNCON_REQUIRE(size >= 1, "static package must hold >= 1 permit");
  DYNCON_REQUIRE(serials.empty() || serials.size() == size,
                 "serial interval size must match package size");
  const PackageId id = packages_.size();
  packages_.push_back(
      Package{id, PackageKind::kStatic, host, size, 0, serials, true});
  attach(id, host);
  return id;
}

PackageId PackageTable::create_reject(NodeId host) {
  const PackageId id = packages_.size();
  packages_.push_back(
      Package{id, PackageKind::kReject, host, 0, 0, Interval{}, true});
  attach(id, host);
  return id;
}

void PackageTable::move(PackageId p, NodeId new_host, std::uint64_t hops) {
  Package& pkg = mut(p);
  detach(p);
  pkg.host = new_host;
  attach(p, new_host);
  moves_ += hops;
  // Same name as move_all()'s handle on purpose (both feed "moves.total");
  // each function-local static binds its own epoch, so neither can observe
  // the other's stale slot.  The old `moves_batch` name suggested a separate
  // counter and hid that this is the same registry row.
  static thread_local obs::CounterHandle moves("moves.total");
  moves.add(hops);
}

void PackageTable::pick_up(PackageId p) {
  Package& pkg = mut(p);
  DYNCON_REQUIRE(pkg.kind == PackageKind::kMobile, "pick_up of non-mobile");
  DYNCON_REQUIRE(pkg.host != kNoNode, "package already carried");
  detach(p);
  pkg.host = kNoNode;
}

void PackageTable::put_down(PackageId p, NodeId node) {
  Package& pkg = mut(p);
  DYNCON_REQUIRE(pkg.host == kNoNode, "put_down of a hosted package");
  pkg.host = node;
  attach(p, node);
}

std::size_t PackageTable::move_all(NodeId node, NodeId parent) {
  auto it = by_host_.find(node);
  if (it == by_host_.end() || it->second.empty()) return 0;
  std::vector<PackageId> moving = it->second;  // copy; attach mutates the map
  for (PackageId p : moving) {
    detach(p);
    mut(p).host = parent;
    attach(p, parent);
  }
  moves_ += 1;  // one message carries the whole set (paper §2.2)
  static thread_local obs::CounterHandle moves("moves.total");
  moves.add();
  return moving.size();
}

std::pair<PackageId, PackageId> PackageTable::split_mobile(PackageId p) {
  const Package pkg = get(p);  // copy before cancel
  DYNCON_REQUIRE(pkg.kind == PackageKind::kMobile, "split of non-mobile");
  DYNCON_REQUIRE(pkg.level >= 1, "split of level-0 package");
  DYNCON_INVARIANT(pkg.size % 2 == 0, "mobile size not even");
  Interval lo, hi;
  if (!pkg.serials.empty()) std::tie(lo, hi) = pkg.serials.split_half();
  cancel(p);
  const PackageId a =
      create_mobile(pkg.host, pkg.level - 1, pkg.size / 2, lo);
  const PackageId b =
      create_mobile(pkg.host, pkg.level - 1, pkg.size / 2, hi);
  static thread_local obs::CounterHandle splits("package.splits");
  splits.add();
  obs::emit(obs::TraceEvent{obs::EventKind::kPackageSplit, 0, pkg.host,
                            pkg.level, pkg.size / 2});
  return {a, b};
}

void PackageTable::make_static(PackageId p) {
  Package& pkg = mut(p);
  DYNCON_REQUIRE(pkg.kind == PackageKind::kMobile && pkg.level == 0,
                 "only level-0 mobile packages become static");
  pkg.kind = PackageKind::kStatic;
}

std::optional<std::uint64_t> PackageTable::consume_one(PackageId p) {
  Package& pkg = mut(p);
  DYNCON_REQUIRE(pkg.kind == PackageKind::kStatic, "consume from non-static");
  DYNCON_INVARIANT(pkg.size >= 1, "empty static package still alive");
  std::optional<std::uint64_t> serial;
  if (!pkg.serials.empty()) serial = pkg.serials.take_one();
  pkg.size -= 1;
  if (pkg.size == 0) cancel(p);
  return serial;
}

void PackageTable::cancel(PackageId p) {
  Package& pkg = mut(p);
  detach(p);
  pkg.alive = false;
}

bool PackageTable::alive(PackageId p) const {
  return p < packages_.size() && packages_[static_cast<std::size_t>(p)].alive;
}

const Package& PackageTable::get(PackageId p) const {
  DYNCON_REQUIRE(p < packages_.size(), "unknown package id");
  const Package& pkg = packages_[static_cast<std::size_t>(p)];
  DYNCON_REQUIRE(pkg.alive, "access to dead package");
  return pkg;
}

Package& PackageTable::mut(PackageId p) {
  return const_cast<Package&>(get(p));
}

const std::vector<PackageId>& PackageTable::at(NodeId node) const {
  auto it = by_host_.find(node);
  return it == by_host_.end() ? kEmpty : it->second;
}

bool PackageTable::has_reject(NodeId node) const {
  for (PackageId p : at(node)) {
    if (get(p).kind == PackageKind::kReject) return true;
  }
  return false;
}

PackageId PackageTable::find_static(NodeId node) const {
  for (PackageId p : at(node)) {
    if (get(p).kind == PackageKind::kStatic) return p;
  }
  return kNoPackage;
}

PackageId PackageTable::find_mobile_of_level(NodeId node,
                                             std::uint32_t level) const {
  for (PackageId p : at(node)) {
    const Package& pkg = get(p);
    if (pkg.kind == PackageKind::kMobile && pkg.level == level) return p;
  }
  return kNoPackage;
}

std::vector<PackageId> PackageTable::all_alive() const {
  std::vector<PackageId> out;
  for (const Package& pkg : packages_) {
    if (pkg.alive) out.push_back(pkg.id);
  }
  return out;
}

std::uint64_t PackageTable::permits_in_packages() const {
  std::uint64_t total = 0;
  for (const Package& pkg : packages_) {
    if (pkg.alive && pkg.kind != PackageKind::kReject) total += pkg.size;
  }
  return total;
}

void PackageTable::extract_image(Image& out) const {
  out.next_id = packages_.size();
  out.moves = moves_;
  out.alive.clear();
  std::vector<NodeId> hosts;
  hosts.reserve(by_host_.size());
  for (const auto& [host, pkgs] : by_host_) hosts.push_back(host);
  std::sort(hosts.begin(), hosts.end());
  for (NodeId host : hosts) {
    for (PackageId p : by_host_.at(host)) {
      const Package& pkg = get(p);
      DYNCON_REQUIRE(pkg.serials.empty(),
                     "extract_image: serial-tracking packages not supported");
      out.alive.push_back(Record{pkg.id, pkg.kind, pkg.host, pkg.size,
                                 pkg.level});
    }
  }
  // by_host_ indexes exactly the alive packages (carried ones would hide at
  // host kNoNode, which never appears as a tree node id).
  std::uint64_t alive_count = 0;
  for (const Package& pkg : packages_) {
    if (pkg.alive) {
      DYNCON_REQUIRE(pkg.host != kNoNode,
                     "extract_image: carried packages not supported");
      ++alive_count;
    }
  }
  DYNCON_INVARIANT(alive_count == out.alive.size(),
                   "extract_image: host index out of sync");
}

void PackageTable::restore_image(const Image& img) {
  DYNCON_REQUIRE(packages_.empty() && by_host_.empty() && moves_ == 0,
                 "restore_image into a non-fresh table");
  packages_.assign(static_cast<std::size_t>(img.next_id), Package{});
  for (const Record& rec : img.alive) {
    DYNCON_REQUIRE(rec.id < img.next_id, "restore_image: id beyond next_id");
    Package& pkg = packages_[static_cast<std::size_t>(rec.id)];
    DYNCON_REQUIRE(!pkg.alive, "restore_image: duplicate package id");
    pkg = Package{rec.id, rec.kind, rec.host, rec.size, rec.level,
                  Interval{}, true};
    by_host_[rec.host].push_back(rec.id);
  }
  moves_ = img.moves;
}

std::uint64_t PackageTable::approx_bytes() const {
  std::uint64_t bytes = packages_.capacity() * sizeof(Package);
  bytes += by_host_.bucket_count() * sizeof(void*);
  for (const auto& [host, pkgs] : by_host_) {
    bytes += sizeof(NodeId) + sizeof(std::vector<PackageId>) + 16;
    bytes += pkgs.capacity() * sizeof(PackageId);
  }
  return bytes;
}

void PackageTable::attach(PackageId p, NodeId host) {
  by_host_[host].push_back(p);
}

void PackageTable::detach(PackageId p) {
  auto it = by_host_.find(get(p).host);
  DYNCON_INVARIANT(it != by_host_.end(), "package host index missing");
  auto& vec = it->second;
  auto pit = std::find(vec.begin(), vec.end(), p);
  DYNCON_INVARIANT(pit != vec.end(), "package missing from host index");
  vec.erase(pit);
  if (vec.empty()) by_host_.erase(it);
}

}  // namespace dyncon::core

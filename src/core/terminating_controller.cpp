#include "core/terminating_controller.hpp"

#include <utility>

#include "util/error.hpp"

namespace dyncon::core {

TerminatingController::TerminatingController(tree::DynamicTree& tree,
                                             std::uint64_t M, std::uint64_t W,
                                             std::uint64_t U, Options options)
    : tree_(tree) {
  IteratedController::Options opts;
  opts.mode = IteratedController::Mode::kExhaustSignal;
  opts.track_domains = options.track_domains;
  opts.serials = std::move(options.serials);
  opts.on_pass_down = std::move(options.on_pass_down);
  inner_ =
      std::make_unique<IteratedController>(tree, M, W, U, std::move(opts));
}

void TerminatingController::terminate_now() {
  if (terminated_) return;
  terminated_ = true;
  // Broadcast "reject signal" + upcast of termination acknowledgements:
  // two messages per tree edge (Obs. 2.1's additive O(n) term).
  control_cost_ += 2 * tree_.size();
}

template <typename Fn>
Result TerminatingController::guard(Fn&& submit) {
  if (terminated_) return Result{Outcome::kTerminated};
  Result r = submit(*inner_);
  if (r.outcome == Outcome::kExhausted) {
    terminate_now();
    return Result{Outcome::kTerminated};
  }
  DYNCON_INVARIANT(r.outcome != Outcome::kRejected,
                   "terminating controller must never reject");
  return r;
}

Result TerminatingController::request_event(NodeId u) {
  return guard([&](IteratedController& c) { return c.request_event(u); });
}

Result TerminatingController::request_add_leaf(NodeId parent) {
  return guard(
      [&](IteratedController& c) { return c.request_add_leaf(parent); });
}

Result TerminatingController::request_add_internal_above(NodeId child) {
  return guard([&](IteratedController& c) {
    return c.request_add_internal_above(child);
  });
}

Result TerminatingController::request_remove(NodeId v) {
  return guard([&](IteratedController& c) { return c.request_remove(v); });
}

std::uint64_t TerminatingController::cost() const {
  return inner_->cost() + control_cost_;
}

std::uint64_t TerminatingController::permits_granted() const {
  return inner_->permits_granted();
}

}  // namespace dyncon::core

#include "core/iterated_controller.hpp"

#include <utility>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dyncon::core {

IteratedController::IteratedController(tree::DynamicTree& tree,
                                       std::uint64_t M, std::uint64_t W,
                                       std::uint64_t U, Options options)
    : tree_(tree), m_(M), w_(W), u_(U), options_(std::move(options)) {
  DYNCON_REQUIRE(M >= 1, "M must be >= 1");
  DYNCON_REQUIRE(U >= 1, "U must be >= 1");
  const bool first_is_final =
      (w_ >= 1 && m_ <= 4 * w_) || (w_ == 0 && m_ <= 4);
  DYNCON_REQUIRE(options_.serials.empty() || first_is_final,
                 "serial tracking requires a single (final) iteration");
  start_iteration(m_);
}

void IteratedController::start_iteration(std::uint64_t Mi) {
  ++iterations_;
  obs::count("controller.iterations");
  obs::emit(obs::TraceEvent{obs::EventKind::kIterationStart, 0, tree_.root(),
                            iterations_, Mi});
  const bool is_final = (w_ >= 1 && Mi <= 4 * w_) || (w_ == 0 && Mi <= 4);
  std::uint64_t Wi;
  Mode inner_mode;
  if (is_final) {
    // Final iteration: run with the real waste budget.  For W = 0 the final
    // base iteration uses W = 1 and the trivial (1,0)-controller cleans up,
    // so the base must signal exhaustion rather than reject.
    Wi = w_ >= 1 ? w_ : 1;
    inner_mode = w_ >= 1 ? options_.mode : Mode::kExhaustSignal;
    phase_ = Phase::kFinal;
  } else {
    Wi = std::max<std::uint64_t>(Mi / 2, 1);
    inner_mode = Mode::kExhaustSignal;
    phase_ = Phase::kIterating;
  }
  CentralizedController::Options opts;
  opts.mode = inner_mode;
  opts.track_domains = options_.track_domains;
  opts.on_pass_down = options_.on_pass_down;
  if (iterations_ == 1) opts.serials = options_.serials;
  inner_ = std::make_unique<CentralizedController>(tree_, Params(Mi, Wi, u_),
                                                   std::move(opts));
}

void IteratedController::advance() {
  DYNCON_INVARIANT(inner_ != nullptr, "advance without active iteration");
  const std::uint64_t Wi = inner_->params().W();
  const std::uint64_t L = inner_->unused_permits();
  // Lemma 3.2 liveness, checked in production: at the first would-be
  // reject, unused permits (storage + packages) never exceed the waste.
  DYNCON_INVARIANT(L <= Wi, "iteration leftover exceeds waste bound");
  obs::count("controller.rotations");
  obs::emit(obs::TraceEvent{obs::EventKind::kIterationRotate, 0, tree_.root(),
                            iterations_, L});
  cost_base_ += inner_->cost();
  granted_base_ += inner_->permits_granted();
  rejects_ += inner_->rejects_delivered();
  inner_.reset();

  if (phase_ == Phase::kFinal) {
    if (w_ == 0 && L > 0) {
      trivial_storage_ = L;  // the trivial (1,0) tail
      phase_ = Phase::kTrivial;
    } else {
      phase_ = Phase::kDone;
    }
    return;
  }
  if (L == 0) {
    phase_ = Phase::kDone;
    return;
  }
  start_iteration(L);
}

Result IteratedController::finish_rejecting() {
  if (options_.mode == Mode::kExhaustSignal) {
    return Result{Outcome::kExhausted};
  }
  if (!wave_charged_) {
    // One reject package per alive node, exactly once (§2.2 reject wave).
    cost_base_ += tree_.size();
    wave_charged_ = true;
  }
  ++rejects_;
  return Result{Outcome::kRejected};
}

template <typename Fn>
Result IteratedController::dispatch(Fn&& submit, NodeId request_node) {
  for (;;) {
    switch (phase_) {
      case Phase::kDone:
        done_ = true;
        return finish_rejecting();
      case Phase::kTrivial: {
        if (trivial_storage_ == 0) {
          phase_ = Phase::kDone;
          continue;
        }
        // Trivial (1,0)-controller: the permit travels from the root
        // straight to the requester.
        --trivial_storage_;
        ++granted_base_;
        cost_base_ += tree_.depth(request_node);
        return Result{Outcome::kGranted};  // caller applies the event
      }
      case Phase::kIterating:
      case Phase::kFinal: {
        Result r = submit(*inner_);
        if (r.outcome == Outcome::kExhausted) {
          advance();
          continue;
        }
        if (r.outcome == Outcome::kRejected) ++rejects_;
        return r;
      }
    }
  }
}

Result IteratedController::request_event(NodeId u) {
  return dispatch(
      [&](CentralizedController& c) { return c.request_event(u); }, u);
}

Result IteratedController::request_add_leaf(NodeId parent) {
  Result r = dispatch(
      [&](CentralizedController& c) { return c.request_add_leaf(parent); },
      parent);
  if (r.granted() && r.new_node == kNoNode) {
    r.new_node = tree_.add_leaf(parent);  // trivial-phase grant
  }
  return r;
}

Result IteratedController::request_add_internal_above(NodeId child) {
  DYNCON_REQUIRE(tree_.alive(child) && child != tree_.root(),
                 "bad add_internal request");
  const NodeId parent = tree_.parent(child);
  Result r = dispatch(
      [&](CentralizedController& c) {
        return c.request_add_internal_above(child);
      },
      parent);
  if (r.granted() && r.new_node == kNoNode) {
    r.new_node = tree_.add_internal_above(child);
  }
  return r;
}

Result IteratedController::request_remove(NodeId v) {
  bool applied_by_inner = false;
  Result r = dispatch(
      [&](CentralizedController& c) {
        Result ir = c.request_remove(v);
        applied_by_inner = ir.granted();
        return ir;
      },
      v);
  if (r.granted() && !applied_by_inner) {
    tree_.remove_node(v);  // trivial-phase grant (no packages to rescue)
  }
  return r;
}

std::uint64_t IteratedController::cost() const {
  return cost_base_ + (inner_ ? inner_->cost() : 0);
}

std::uint64_t IteratedController::permits_granted() const {
  return granted_base_ + (inner_ ? inner_->permits_granted() : 0);
}

std::uint64_t IteratedController::unused_permits() const {
  return trivial_storage_ + (inner_ ? inner_->unused_permits() : 0);
}

}  // namespace dyncon::core

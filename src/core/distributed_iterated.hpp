#pragma once

// Distributed iteration wrappers (Theorem 4.7 and Observation 2.1).
//
// `DistributedIterated` runs DistributedController instances in iterations
// exactly like the centralized IteratedController: iteration i uses
// (M_i, M_i/2); when the root first signals exhaustion the wrapper *drains*
// the instance (lets every active agent finish — the distributed stand-in
// for "all actions of the controller have been completed"), counts the
// leftover L with a broadcast/upcast (charged as control messages), clears
// the structure, and starts iteration i+1 with M_{i+1} = L.  Requests that
// saw the exhaustion are replayed on the next instance.
//
// `DistributedTerminating` is the Observation 2.1 transform: it never
// rejects; when the pipeline exhausts it terminates (broadcast + upcast),
// and it can also be terminated externally (`terminate`), which is what the
// adaptive controller's rotation uses.

#include <cstdint>
#include <deque>
#include <memory>

#include "core/distributed_controller.hpp"

namespace dyncon::core {

class DistributedIterated {
 public:
  using Mode = DistributedController::Mode;
  using Callback = DistributedController::Callback;

  struct Options {
    Mode mode = Mode::kRejectWave;
    bool track_domains = true;
    bool apply_events = true;
    Interval serials;
    /// Forwarded to every base-controller iteration (§5.3).
    std::function<void(NodeId, std::uint64_t)> on_pass_down;
    /// Armed/disarmed at *this* wrapper's submit boundary — one token per
    /// request across every replay the rotation performs.  Deliberately
    /// not forwarded to the inner iterations (that would double-arm).
    sim::Watchdog* watchdog = nullptr;
    /// Forwarded to every iteration (see DistributedController::Options).
    bool allow_unreliable_transport = false;
    /// Crash stack, forwarded to every iteration.  The wrapper also
    /// installs the watchdog death probe itself, over whichever instance
    /// is current, so the orphan-lock release wave survives rotation.
    sim::CrashDriver* crashes = nullptr;
    agent::Durability durability = agent::Durability::kVolatile;
    bool meter_persistence = false;
    /// Volatile whiteboards only: how many times a crash-failed request is
    /// resubmitted before its rejection is surfaced.  The watchdog token
    /// armed at this wrapper's boundary stays armed across redrives, so a
    /// request can never ping-pong forever unnoticed.
    std::uint32_t crash_redrives = 2;
  };

  DistributedIterated(sim::Network& net, tree::DynamicTree& tree,
                      std::uint64_t M, std::uint64_t W, std::uint64_t U,
                      Options options);
  DistributedIterated(sim::Network& net, tree::DynamicTree& tree,
                      std::uint64_t M, std::uint64_t W, std::uint64_t U)
      : DistributedIterated(net, tree, M, W, U, Options{}) {}
  ~DistributedIterated();

  DistributedIterated(const DistributedIterated&) = delete;
  DistributedIterated& operator=(const DistributedIterated&) = delete;

  void submit(const RequestSpec& spec, Callback done);
  void submit_event(NodeId u, Callback done);
  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  [[nodiscard]] std::uint64_t messages_used() const;
  [[nodiscard]] std::uint64_t permits_granted() const;
  [[nodiscard]] std::uint64_t rejects_delivered() const { return rejects_; }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  /// True once every future request will be rejected (the pipeline is
  /// spent, or the final iteration has started its reject wave).
  [[nodiscard]] bool done() const {
    return phase_ == Phase::kDone ||
           (inner_ && inner_->reject_wave_started());
  }
  [[nodiscard]] std::uint64_t unused_permits() const;
  [[nodiscard]] const DistributedController* inner() const {
    return inner_.get();
  }
  /// No agents active anywhere in the pipeline.
  [[nodiscard]] bool quiescent() const { return inflight_ == 0; }

  /// Forwarded to the current iteration's controller (see
  /// DistributedController::crash_recover); false between iterations.
  bool crash_recover();

  /// Stop accepting grants: drain, then call `on_done` (used by the
  /// terminating transform / adaptive rotation).  Subsequent submissions
  /// complete with kExhausted.
  void freeze(std::function<void()> on_done);

 private:
  enum class Phase : std::uint8_t {
    kIterating,
    kFinal,
    kTrivial,
    kDone,
  };

  void dispatch(const RequestSpec& spec, Callback done,
                std::uint32_t redrives_left);
  void start_iteration(std::uint64_t Mi);
  void rotate();
  void maybe_finish_drain();
  void complete_async(Callback done, Result r);
  void apply_trivial(const RequestSpec& spec, Result& r);

  sim::Network& net_;
  tree::DynamicTree& tree_;
  std::uint64_t m_, w_, u_;
  Options options_;

  std::unique_ptr<DistributedController> inner_;
  Phase phase_ = Phase::kIterating;
  bool draining_ = false;
  bool frozen_ = false;
  std::function<void()> on_frozen_;
  std::uint64_t inflight_ = 0;
  std::uint64_t iterations_ = 0;
  std::uint64_t trivial_storage_ = 0;
  std::deque<std::pair<RequestSpec, Callback>> pending_;
  std::uint64_t messages_base_ = 0;
  std::uint64_t granted_base_ = 0;
  std::uint64_t rejects_ = 0;
  bool wave_charged_ = false;
};

/// Observation 2.1: the terminating (M,W)-controller.  Never rejects; on
/// exhaustion it terminates with M-W <= granted <= M.
class DistributedTerminating {
 public:
  using Callback = DistributedController::Callback;

  struct Options {
    bool track_domains = true;
    bool apply_events = true;
    Interval serials;
    std::function<void(NodeId, std::uint64_t)> on_pass_down;
    /// Handed to the inner iterated wrapper, which arms one token per
    /// request at its own submit boundary.
    sim::Watchdog* watchdog = nullptr;
    bool allow_unreliable_transport = false;
    /// See DistributedIterated::Options.
    sim::CrashDriver* crashes = nullptr;
    agent::Durability durability = agent::Durability::kVolatile;
    bool meter_persistence = false;
    std::uint32_t crash_redrives = 2;
  };

  DistributedTerminating(sim::Network& net, tree::DynamicTree& tree,
                         std::uint64_t M, std::uint64_t W, std::uint64_t U,
                         Options options);
  DistributedTerminating(sim::Network& net, tree::DynamicTree& tree,
                         std::uint64_t M, std::uint64_t W, std::uint64_t U)
      : DistributedTerminating(net, tree, M, W, U, Options{}) {}

  void submit(const RequestSpec& spec, Callback done);
  void submit_event(NodeId u, Callback done);
  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);

  [[nodiscard]] bool terminated() const { return terminated_; }
  [[nodiscard]] std::uint64_t messages_used() const;
  [[nodiscard]] std::uint64_t permits_granted() const {
    return inner_.permits_granted();
  }
  [[nodiscard]] bool quiescent() const { return inner_.quiescent(); }

  /// Externally terminate (adaptive rotation): drain, broadcast/upcast,
  /// then `on_done` fires.  Idempotent.
  void terminate(std::function<void()> on_done);

  /// Forwarded orphan-lock release wave (the adaptive wrapper probes both
  /// of its instances through this).
  bool crash_recover() { return inner_.crash_recover(); }

 private:
  void mark_terminated();

  sim::Network& net_;
  tree::DynamicTree& tree_;
  DistributedIterated inner_;
  bool terminated_ = false;
  std::uint64_t control_messages_ = 0;
};

}  // namespace dyncon::core

#pragma once

// Common vocabulary for every (M,W)-controller in this library.
//
// A controller receives online requests at arbitrary nodes.  Topological
// requests name the change they want (the controlled dynamic model, §2.1);
// the controller applies the change to the shared DynamicTree if and when
// it grants the permit, so a change can never happen without a permit.

#include <cstdint>
#include <optional>
#include <ostream>

#include "util/ids.hpp"

namespace dyncon::core {

enum class Outcome : std::uint8_t {
  kGranted,     ///< permit delivered; the requested event happened
  kRejected,    ///< reject delivered
  kExhausted,   ///< (internal mode) root storage exhausted; wrapper decides
  kTerminated,  ///< terminating controller already terminated
  kMoot,        ///< the request lost its meaning (its subject was deleted
                ///< while the request waited; §4.2's "requests may lose
                ///< their meaning if the node is deleted")
};

[[nodiscard]] constexpr const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kGranted:
      return "granted";
    case Outcome::kRejected:
      return "rejected";
    case Outcome::kExhausted:
      return "exhausted";
    case Outcome::kTerminated:
      return "terminated";
    case Outcome::kMoot:
      return "moot";
  }
  return "?";
}

/// gtest and iostream diagnostics print outcomes by name.
inline std::ostream& operator<<(std::ostream& os, Outcome o) {
  return os << outcome_name(o);
}

/// A request, as the environment hands it to a controller: what event it
/// wants and where it arrives (paper §2.1.2 arrival rules).
struct RequestSpec {
  enum class Type : std::uint8_t {
    kEvent,        ///< non-topological; arrives anywhere
    kAddLeaf,      ///< arrives at the parent-to-be (= subject)
    kAddInternal,  ///< subject = the child above which to insert; arrives
                   ///< at the subject's parent
    kRemove,       ///< subject = node to delete; arrives at the subject
  };
  Type type = Type::kEvent;
  NodeId subject = kNoNode;
};

[[nodiscard]] constexpr const char* request_type_name(RequestSpec::Type t) {
  switch (t) {
    case RequestSpec::Type::kEvent:
      return "event";
    case RequestSpec::Type::kAddLeaf:
      return "add-leaf";
    case RequestSpec::Type::kAddInternal:
      return "add-internal";
    case RequestSpec::Type::kRemove:
      return "remove";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, RequestSpec::Type t) {
  return os << request_type_name(t);
}

inline std::ostream& operator<<(std::ostream& os, const RequestSpec& spec) {
  return os << request_type_name(spec.type) << "(" << spec.subject << ")";
}

/// Result of one request.
struct Result {
  Outcome outcome = Outcome::kRejected;
  /// The request's agent was killed by a node crash before any verdict
  /// (volatile whiteboards only).  Such results arrive as kRejected — the
  /// protocol made no promise — but wrappers configured with redrives
  /// resubmit them instead of surfacing the rejection.  (Packed beside the
  /// outcome so Result keeps fitting hot-path InlineFn captures.)
  bool crash_failed = false;
  /// For granted add-leaf / add-internal requests: the new node's id.
  NodeId new_node = kNoNode;
  /// Permit serial number, when the controller tracks serials (§5.2).
  std::optional<std::uint64_t> serial;

  [[nodiscard]] bool granted() const { return outcome == Outcome::kGranted; }
};

/// Synchronous controller interface (centralized controllers and the
/// synchronous facades of distributed ones used by benches).
class IController {
 public:
  virtual ~IController() = default;

  /// Non-topological event at node u (e.g., a "ticket sale").
  virtual Result request_event(NodeId u) = 0;

  /// Topological requests; the change is applied on grant.
  virtual Result request_add_leaf(NodeId parent) = 0;
  virtual Result request_add_internal_above(NodeId child) = 0;
  virtual Result request_remove(NodeId v) = 0;

  /// The paper's cost measure so far: move complexity for centralized
  /// controllers, message count for distributed ones.
  [[nodiscard]] virtual std::uint64_t cost() const = 0;

  [[nodiscard]] virtual std::uint64_t permits_granted() const = 0;
};

}  // namespace dyncon::core

#pragma once

// The distributed (M,W)-controller of paper §4 (fixed, known U).
//
// Each request spawns a mobile agent at its arrival node.  The agent:
//
//   1. locks its node; a reject package there rejects the request, a static
//      package grants it on the spot;
//   2. otherwise climbs toward the root, locking every node (waiting FIFO
//      at nodes locked by other agents), until it finds a reject node, a
//      filler node, or the root;
//   3. at a reject node it walks home placing reject packages and
//      unlocking; at the root it either creates the level-j(u) package from
//      Storage or triggers the reject flood;
//   4. with a package in its Bag it walks down performing Proc (split at
//      each u_k), grants at the origin, walks back up to the topmost node
//      it reached, and finally walks down unlocking every node;
//   5. the requested event is applied atomically at the moment the grant
//      is delivered at the origin — "the requested event takes place when
//      the request is granted" (item 2) — while the agent still holds
//      every lock from the origin to the topmost node it reached.  That
//      window is the serialization Lemmas 4.3-4.5 reason about: no other
//      agent can observe the subject between its own moot check and its
//      grant.
//
// Every hop is one network message; the reject flood and the
// graceful-deletion data handoff are charged per the paper's accounting.
// The API is asynchronous (callbacks fire from the event loop);
// `DistributedSyncFacade` below adapts it to IController for benches that
// issue requests one at a time.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include <set>
#include <unordered_set>
#include <vector>

#include "agent/durable.hpp"
#include "agent/runtime.hpp"
#include "agent/taxi.hpp"
#include "agent/whiteboard.hpp"
#include "core/controller_iface.hpp"
#include "core/domain.hpp"
#include "core/package.hpp"
#include "core/params.hpp"
#include "obs/span.hpp"
#include "sim/crash.hpp"
#include "sim/network.hpp"
#include "tree/dynamic_tree.hpp"

namespace dyncon::sim {
class Watchdog;
}  // namespace dyncon::sim

namespace dyncon::core {

class DistributedController : public sim::CrashListener {
 public:
  enum class Mode : std::uint8_t { kRejectWave, kExhaustSignal };

  struct Options {
    Mode mode = Mode::kRejectWave;
    bool track_domains = true;
    /// Counting-only instances (App. A's parallel (U/2, U/4)-controller)
    /// grant permits but never apply topological changes themselves.
    bool apply_events = true;
    Interval serials;
    /// Record a per-agent action trail (lock/unlock/hop); costs memory and
    /// time, so it is off unless a test is being debugged.
    bool debug_trace = false;
    /// Local observation hook (§5.3): called as (node, permits) whenever a
    /// carried package of `permits` permits arrives at `node` on its way
    /// down.  In the distributed protocol this is literally each node
    /// watching its own traffic — zero extra messages.
    std::function<void(NodeId, std::uint64_t)> on_pass_down;
    /// Liveness monitor (sim/watchdog.hpp): when set, every submission
    /// arms a token that the completion callback disarms, so a request
    /// stranded by the network becomes a loud WatchdogError instead of a
    /// silent missing verdict.  Not owned; must outlive the controller.
    sim::Watchdog* watchdog = nullptr;
    /// The paper's lemmas assume reliable links, so constructing a
    /// controller on a lossy network without the reliable channel is
    /// almost always a harness bug and the constructor refuses.  Tests
    /// that *want* to watch the protocol strand agents (the watchdog
    /// verdict tests) opt in here.
    bool allow_unreliable_transport = false;
    /// Crash adversary (sim/crash.hpp): when set, the controller registers
    /// as a CrashListener and applies the semantic damage of each node
    /// transition (PROTOCOL.md §9).  Not owned; must outlive the
    /// controller.
    sim::CrashDriver* crashes = nullptr;
    /// Whether whiteboards survive crashes.  kVolatile: a crash wipes the
    /// node's board — parked agents die, the lock holder is doomed and its
    /// locks are reclaimed by the orphan-lock release wave.  kDurable:
    /// every board mutation is journaled via the wire codec and the board
    /// is restored on restart; the outage is bridged by the reliable
    /// channel and no agent dies.
    agent::Durability durability = agent::Durability::kVolatile;
    /// kDurable only: charge each journal write's measured bits as metered
    /// application traffic (the §2.2 accounting), so persistence cost
    /// shows up in NetStats.  Off by default: charging changes the per-kind
    /// byte counts of runs that existed before this layer.
    bool meter_persistence = false;
    /// Vectorized permit grants (PR 9): when a lock release hands the node
    /// to a waiter and the event queue has nothing else pending at the
    /// current tick, run the waiter's continuation inline at the tail of
    /// the current event instead of scheduling it at +0.  A grant wave
    /// draining k queued requests then dispatches as one event (the k-1
    /// inlined continuations are credited via
    /// EventQueue::count_extra_fired, and their permit counters flush as
    /// one batched add), so every counter — including perf.events — is
    /// bit-identical to an unbatched run: the inlined waiter would have
    /// been the very next event to fire anyway.
    bool batch_grants = true;
  };

  /// Grant-wave economics (exported as the perf.batch.* bench family, never
  /// to the metrics registry: registry snapshots must stay bit-identical
  /// between batched and unbatched runs).
  struct ResumeStats {
    std::uint64_t inlined = 0;    ///< waiter continuations run inline
    std::uint64_t scheduled = 0;  ///< waiter continuations scheduled at +0
    std::uint64_t max_chain = 0;  ///< longest inline resume chain
  };

  /// Completion callback.  Deliberately std::function, not the hot-path
  /// InlineFn: it is stored once per *request* (not per event/send), and
  /// callers legitimately capture big closures (test fixtures, latching
  /// lambdas) that must not be squeezed into a 64-byte inline budget.
  using Callback = std::function<void(const Result&)>;

  DistributedController(sim::Network& net, tree::DynamicTree& tree,
                        Params params, Options options);
  DistributedController(sim::Network& net, tree::DynamicTree& tree,
                        Params params)
      : DistributedController(net, tree, params, Options{}) {}
  ~DistributedController();

  DistributedController(const DistributedController&) = delete;
  DistributedController& operator=(const DistributedController&) = delete;

  // ---- crash/recovery (sim::CrashListener) ----------------------------------

  /// A node went down.  Volatile: wipe its whiteboard, kill the agents
  /// parked there, doom the lock holder.  Durable: nothing is lost — the
  /// journal is authoritative and the board survives in it.
  void on_crash(NodeId v) override;
  /// A node came back.  Durable: decode the journaled snapshot, verify it
  /// against the live mirror, and reinstall it (reincarnating the parked
  /// agents and the down pointer).  Volatile: the node restarts blank.
  void on_restart(NodeId v) override;

  /// The orphan-lock release wave: force-finalize every doomed lock holder
  /// (releasing all its locks, rescuing any carried package, failing its
  /// request).  Returns true if it acted or a node outage is still in
  /// progress — the contract of a watchdog death probe, and the wrappers
  /// install exactly this as one.
  bool crash_recover();

  [[nodiscard]] std::size_t doomed_holders() const { return doomed_.size(); }
  [[nodiscard]] const agent::DurableStore* durable_store() const {
    return durable_.get();
  }

  // ---- request submission (asynchronous) -----------------------------------

  void submit_event(NodeId u, Callback done);
  void submit_add_leaf(NodeId parent, Callback done);
  void submit_add_internal_above(NodeId child, Callback done);
  void submit_remove(NodeId v, Callback done);
  void submit(const RequestSpec& spec, Callback done);

  // ---- introspection ---------------------------------------------------------

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] std::uint64_t permits_granted() const { return granted_; }
  [[nodiscard]] std::uint64_t rejects_delivered() const { return rejects_; }
  [[nodiscard]] std::uint64_t root_storage() const { return storage_; }
  [[nodiscard]] std::uint64_t unused_permits() const;
  [[nodiscard]] bool reject_wave_started() const { return wave_; }
  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] std::size_t active_agents() const { return agents_.size(); }
  [[nodiscard]] const PackageTable& packages() const { return packages_; }
  [[nodiscard]] const DomainTracker* domains() const {
    return domains_.get();
  }

  /// Messages this instance has put on the network (agent hops + reject
  /// flood + data handoffs): the paper's message complexity.
  [[nodiscard]] std::uint64_t messages_used() const { return messages_; }

  [[nodiscard]] const ResumeStats& resume_stats() const {
    return resume_stats_;
  }

  /// Modeled whiteboard memory at node v in bits (Claim 4.8 accounting).
  /// In the designer-port model (§4.4.2) the agent queue at v is kept as a
  /// linked list distributed among v's children, so v itself only pays
  /// O(log N) for the queue head instead of O(deg(v) log N).
  [[nodiscard]] std::uint64_t memory_bits(
      NodeId v, bool designer_port_model = false) const;

  /// One line per active agent (debugging stuck executions in tests).
  [[nodiscard]] std::string debug_agents() const;

 private:
  enum class Phase : std::uint8_t {
    kStart,       ///< evaluating at the origin
    kClimb,       ///< walking up, locking
    kProcDown,    ///< carrying a package down, splitting at each u_k
    kReturnUp,    ///< after the grant: walking back up to the topmost node
    kUnlockDown,  ///< final walk down, unlocking
    kRejectDown,  ///< walking home placing reject packages
    kAbortDown,   ///< exhaust-signal mode: walking home unlocking only
  };

  struct Agent {
    agent::AgentId id = agent::kNoAgent;
    NodeId origin = kNoNode;
    NodeId at = kNoNode;
    std::uint64_t distance = 0;      ///< exact hops to origin (path locked)
    std::uint64_t top_distance = 0;  ///< distance of the topmost node
    Phase phase = Phase::kStart;
    std::uint32_t bag_level = 0;
    PackageId carrying = kNoPackage;
    RequestSpec request;
    Callback done;
    Result result;
    std::uint64_t locks_held = 0;  ///< debug accounting; 0 at termination
    std::string history;           ///< debug trail (lock/unlock/hop)
    // Op-span state (inert — trace stays kNoTrace — unless a SpanSink is
    // installed when the agent is created): every processing step scopes
    // `span` as the current context so hop spans parent to this op, and
    // finish() closes the op span [span_begin, now].
    obs::SpanContext span;
    std::uint32_t span_parent = obs::kNoSpan;
    SimTime span_begin = 0;
  };

  /// Dense slot map keyed by the sequential AgentId stream.  Lookup — the
  /// single hottest controller operation (one per arrival) — is two array
  /// loads (id -> slot -> Agent) instead of a hash probe.  Finished agents'
  /// slots are recycled through a free list, so the pool stays at
  /// peak-concurrency size while the id index grows 4 bytes per request
  /// ever submitted.  The pool is a deque: references handed out by find()
  /// / create() stay valid across later create() calls (the old
  /// unordered_map gave the same guarantee, and callers rely on it).
  class AgentTable {
   public:
    static constexpr std::uint32_t kNoSlot = 0xffffffffU;

    [[nodiscard]] Agent* find(agent::AgentId id) {
      if (id >= slot_of_.size()) return nullptr;
      const std::uint32_t s = slot_of_[id];
      return s == kNoSlot ? nullptr : &pool_[s];
    }
    [[nodiscard]] const Agent* find(agent::AgentId id) const {
      if (id >= slot_of_.size()) return nullptr;
      const std::uint32_t s = slot_of_[id];
      return s == kNoSlot ? nullptr : &pool_[s];
    }

    Agent& create(agent::AgentId id) {
      if (id >= slot_of_.size()) slot_of_.resize(id + 1, kNoSlot);
      std::uint32_t s;
      if (!free_.empty()) {
        s = free_.back();
        free_.pop_back();
        pool_[s] = Agent{};  // recycled slot: back to default state
      } else {
        s = static_cast<std::uint32_t>(pool_.size());
        pool_.emplace_back();
      }
      slot_of_[id] = s;
      ++live_;
      return pool_[s];
    }

    void erase(agent::AgentId id) {
      const std::uint32_t s = slot_of_[id];
      slot_of_[id] = kNoSlot;
      pool_[s].id = agent::kNoAgent;  // liveness marker for for_each
      free_.push_back(s);
      --live_;
    }

    [[nodiscard]] std::size_t size() const { return live_; }

    /// Visit live agents in slot order (deterministic: a pure function of
    /// the operation history, unlike hash-table order).
    template <typename Fn>
    void for_each(Fn&& fn) const {
      for (const Agent& a : pool_) {
        if (a.id != agent::kNoAgent) fn(a);
      }
    }

   private:
    std::vector<std::uint32_t> slot_of_;
    std::deque<Agent> pool_;
    std::vector<std::uint32_t> free_;
    std::size_t live_ = 0;
  };

  void on_arrival(agent::AgentId id, NodeId node, NodeId came_from);
  void on_enter(Agent& a, NodeId node, NodeId came_from);
  void evaluate(Agent& a);
  void begin_proc(Agent& a, PackageId p, std::uint32_t level);
  void on_proc_down(Agent& a, NodeId node);
  void deliver_grant(Agent& a);
  void on_return_up(Agent& a, NodeId node);
  void unlock_step(Agent& a, NodeId node);
  void reject_step(Agent& a, NodeId node);
  void abort_step(Agent& a, NodeId node);
  void root_logic(Agent& a);
  void start_reject_flood();
  void flood_fanout(NodeId from);
  void terminate_at_origin(Agent& a);
  void apply_event_at_grant(Agent& a);
  void finish(Agent& a);
  /// Zero-width op span for requests resolved without an agent (moot).
  [[nodiscard]] obs::Span instant_op_span(obs::SpanSink& sink,
                                          Outcome outcome, NodeId node);
  void resume_waiter(const agent::Waiter& w, NodeId at);
  /// Tail-position resume (the vectorized grant path).  Callers guarantee
  /// this is the LAST action of the current event's handler; the waiter is
  /// then run inline when that is provably equivalent to the +0 schedule
  /// it replaces (nothing else pending at the current tick), else
  /// scheduled.
  void resume_waiter_tail(const agent::Waiter& w, NodeId at);
  /// Count one granted permit.  Inside an inline resume chain the registry
  /// add is deferred and flushed as one batched op at the end of the chain
  /// (identical totals, k-1 fewer registry touches).
  void note_grant();
  void flush_grants();
  /// Force-finalize `id` right now: release every lock it holds (resuming
  /// waiters), remove it from any queue it is parked in, rescue a carried
  /// package as a static package where the agent stood, and deliver its
  /// verdict (granted stays granted; anything earlier becomes a
  /// crash-failed rejection).
  void kill_agent(agent::AgentId id);
  /// Assemble the durable snapshot of `v` (board + parked-agent state).
  [[nodiscard]] agent::BoardSnapshot snapshot_board(NodeId v) const;
  [[nodiscard]] bool moot(const RequestSpec& spec) const;
  [[nodiscard]] sim::Message hop_message(const Agent& a) const;
  void hop_up(Agent& a);
  void hop_down(Agent& a, NodeId to);
  [[nodiscard]] Agent& agent(agent::AgentId id);

  sim::Network& net_;
  tree::DynamicTree& tree_;
  Params params_;
  Options options_;

  agent::WhiteboardManager boards_;
  agent::Taxi taxi_;
  agent::AgentIdAllocator ids_;
  AgentTable agents_;

  PackageTable packages_;
  std::unique_ptr<DomainTracker> domains_;

  /// Lock holders whose node crashed under them (volatile mode): they are
  /// killed at their next arrival, or collected by crash_recover().
  /// Ordered so the release wave is deterministic.
  std::set<agent::AgentId> doomed_;
  /// Agents force-finalized by a crash: late deliveries addressed to them
  /// (ARQ retransmissions that bridged the outage) are dropped as stale
  /// instead of tripping the unknown-agent invariant.
  std::unordered_set<agent::AgentId> dead_ids_;
  std::unique_ptr<agent::DurableStore> durable_;

  std::uint64_t storage_;
  Interval storage_serials_;
  ResumeStats resume_stats_;
  std::uint32_t resume_depth_ = 0;  ///< inline resume chain depth
  std::uint64_t pending_grants_ = 0;  ///< grants awaiting the batched flush
  std::uint64_t granted_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t messages_ = 0;
  bool wave_ = false;
  bool exhausted_ = false;
};

/// Adapts the asynchronous controller to the synchronous IController
/// interface by running the event loop to completion after each request.
/// Requests therefore never overlap; this is the facade benches use when
/// comparing against centralized controllers.
class DistributedSyncFacade final : public IController {
 public:
  DistributedSyncFacade(sim::EventQueue& queue, DistributedController& ctrl);

  Result request_event(NodeId u) override;
  Result request_add_leaf(NodeId parent) override;
  Result request_add_internal_above(NodeId child) override;
  Result request_remove(NodeId v) override;
  [[nodiscard]] std::uint64_t cost() const override;
  [[nodiscard]] std::uint64_t permits_granted() const override;

 private:
  Result run(const RequestSpec& spec);

  sim::EventQueue& queue_;
  DistributedController& ctrl_;
};

}  // namespace dyncon::core

#include "core/message_meter.hpp"

#include <utility>

#include "util/error.hpp"

namespace dyncon::core {

MessageMeter::MessageMeter(IController& ctrl, sim::Network& net)
    : ctrl_(ctrl), net_(net) {}

bool MessageMeter::send(NodeId from, NodeId to, std::uint64_t payload_bits,
                        sim::Network::Deliver on_deliver) {
  DYNCON_REQUIRE(static_cast<bool>(on_deliver), "null delivery handler");
  // One permit per message: a non-topological request at the sender.
  const Result r = ctrl_.request_event(from);
  if (!r.granted()) {
    ++suppressed_;
    return false;
  }
  ++sent_;
  net_.send(from, to, sim::Message::app_payload(payload_bits),
            std::move(on_deliver));
  return true;
}

}  // namespace dyncon::core

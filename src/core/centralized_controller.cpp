#include "core/centralized_controller.hpp"

#include <utility>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace dyncon::core {

CentralizedController::CentralizedController(tree::DynamicTree& tree,
                                             Params params, Options options)
    : tree_(tree),
      params_(params),
      options_(std::move(options)),
      storage_(params.M()),
      storage_serials_(options_.serials) {
  DYNCON_REQUIRE(
      storage_serials_.empty() || storage_serials_.size() == params.M(),
      "serial interval must cover exactly M permits");
  if (options_.track_domains) {
    domains_ = std::make_unique<DomainTracker>(tree_, params_, packages_);
    tree_.add_observer(domains_.get());
  }
}

CentralizedController::~CentralizedController() {
  if (domains_) tree_.remove_observer(domains_.get());
}

Result CentralizedController::request_event(NodeId u) {
  return handle(u, EventSpec{EventSpec::Type::kNone, kNoNode});
}

Result CentralizedController::request_add_leaf(NodeId parent) {
  DYNCON_REQUIRE(tree_.alive(parent), "add_leaf: parent not alive");
  // "A request to add a node arrives at the node's parent to be."
  return handle(parent, EventSpec{EventSpec::Type::kAddLeaf, parent});
}

Result CentralizedController::request_add_internal_above(NodeId child) {
  DYNCON_REQUIRE(tree_.alive(child), "add_internal: child not alive");
  DYNCON_REQUIRE(child != tree_.root(), "cannot insert above the root");
  const NodeId parent = tree_.parent(child);
  return handle(parent, EventSpec{EventSpec::Type::kAddInternal, child});
}

Result CentralizedController::request_remove(NodeId v) {
  DYNCON_REQUIRE(tree_.alive(v), "remove: node not alive");
  DYNCON_REQUIRE(v != tree_.root(), "the root is never deleted");
  // "A request to delete a node u arrives at u."
  return handle(v, EventSpec{EventSpec::Type::kRemove, v});
}

std::uint64_t CentralizedController::cost() const {
  return packages_.move_complexity();
}

std::uint64_t CentralizedController::unused_permits() const {
  return storage_ + packages_.permits_in_packages();
}

void CentralizedController::clear_data_structure() {
  std::uint64_t reclaimed = 0;
  for (PackageId p : packages_.all_alive()) {
    const Package& pkg = packages_.get(p);
    if (pkg.kind != PackageKind::kReject) reclaimed += pkg.size;
    if (domains_) domains_->drop(p);
    packages_.cancel(p);
  }
  storage_ += reclaimed;
  storage_serials_ = Interval{};  // serials are not reconstructed
}

void CentralizedController::extract_image(Image& out) const {
  DYNCON_REQUIRE(storage_serials_.empty() && options_.serials.empty(),
                 "extract_image: serial-tracking controllers not supported");
  DYNCON_REQUIRE(domains_ == nullptr,
                 "extract_image: domain-tracking controllers not supported");
  DYNCON_REQUIRE(!options_.on_pass_down,
                 "extract_image: on_pass_down hook not supported");
  out.storage = storage_;
  out.granted = granted_;
  out.rejects = rejects_;
  out.wave = wave_;
  out.exhausted = exhausted_;
  packages_.extract_image(out.packages);
}

void CentralizedController::restore_image(const Image& img) {
  DYNCON_REQUIRE(granted_ == 0 && rejects_ == 0 && !wave_ && !exhausted_ &&
                     packages_.move_complexity() == 0,
                 "restore_image onto a used controller");
  DYNCON_REQUIRE(domains_ == nullptr && storage_serials_.empty(),
                 "restore_image: tracked controllers not supported");
  storage_ = img.storage;
  granted_ = img.granted;
  rejects_ = img.rejects;
  wave_ = img.wave;
  exhausted_ = img.exhausted;
  packages_.restore_image(img.packages);
}

Result CentralizedController::handle(NodeId u, const EventSpec& ev) {
  obs::SpanSink* sink = obs::spans();
  if (sink == nullptr) return handle_impl(u, ev);  // the one-branch path
  const Result res = handle_impl(u, ev);
  // The centralized controller is synchronous — the whole operation is one
  // instant of virtual time, stamped by whoever drives it (obs::span_now).
  const obs::SpanContext ctx = obs::current_span();
  obs::Span s;
  s.trace = ctx.trace != obs::kNoTrace ? ctx.trace : sink->new_trace();
  s.id = sink->open(s.trace);
  s.parent = ctx.trace != obs::kNoTrace ? ctx.span : obs::kNoSpan;
  s.kind = obs::SpanKind::kOp;
  s.op = static_cast<std::uint8_t>(res.outcome);
  s.label = outcome_name(res.outcome);
  s.node = u;
  s.begin = obs::span_now();
  s.end = s.begin;
  sink->emit(s);
  return res;
}

Result CentralizedController::handle_impl(NodeId u, const EventSpec& ev) {
  DYNCON_REQUIRE(tree_.alive(u), "request at dead node");

  // Step 1: a reject package at u rejects immediately.
  if (packages_.has_reject(u)) {
    ++rejects_;
    static thread_local obs::CounterHandle rejected("permits.rejected");
    rejected.add();
    obs::emit(obs::TraceEvent{obs::EventKind::kRequestRejected, 0, u, 0, 0});
    return Result{Outcome::kRejected};
  }
  if (exhausted_ && options_.mode == Mode::kExhaustSignal) {
    static thread_local obs::CounterHandle exhausted_c("requests.exhausted");
    exhausted_c.add();
    return Result{Outcome::kExhausted};
  }

  // Step 2: a static package at u grants immediately.
  if (PackageId st = packages_.find_static(u); st != kNoPackage) {
    return grant_from_static(st, u, ev);
  }

  // Step 3: climb from u to the root looking for the closest filler node.
  // The filler windows of distinct levels partition the distances, so at
  // hop distance d only a mobile package of level window(d) qualifies.
  std::vector<NodeId> path{u};  // path[i] = ancestor of u at distance i
  std::uint64_t d = 0;
  NodeId w = u;
  for (;;) {
    const std::uint32_t lvl = params_.creation_level(d);
    DYNCON_INVARIANT(params_.in_filler_window(lvl, d),
                     "window/creation level mismatch");
    if (PackageId p = packages_.find_mobile_of_level(w, lvl);
        p != kNoPackage) {
      static thread_local obs::CounterHandle steps("filler_search.steps");
      steps.add(d);
      return distribute_and_grant(p, lvl, path, d, u, ev);
    }
    if (w == tree_.root()) break;
    w = tree_.parent(w);
    path.push_back(w);
    ++d;
  }
  static thread_local obs::CounterHandle steps("filler_search.steps");
  steps.add(d);

  // Step 3b: no filler; create a package at the root (or give up).
  const std::uint32_t j = params_.creation_level(d);
  const std::uint64_t need = params_.mobile_size(j);
  if (storage_ < need) {
    if (options_.mode == Mode::kExhaustSignal) {
      exhausted_ = true;
      static thread_local obs::CounterHandle exhausted_c("requests.exhausted");
      exhausted_c.add();
      obs::emit(obs::TraceEvent{obs::EventKind::kRequestExhausted, 0, u, 0, 0});
      return Result{Outcome::kExhausted};
    }
    start_reject_wave();
    ++rejects_;
    static thread_local obs::CounterHandle rejected("permits.rejected");
    rejected.add();
    obs::emit(obs::TraceEvent{obs::EventKind::kRequestRejected, 0, u, 0, 0});
    return Result{Outcome::kRejected};
  }
  Interval serials;
  if (!storage_serials_.empty()) serials = storage_serials_.take_low(need);
  storage_ -= need;
  const PackageId p = packages_.create_mobile(tree_.root(), j, need, serials);
  return distribute_and_grant(p, j, path, d, u, ev);
}

Result CentralizedController::grant_from_static(PackageId st, NodeId u,
                                                const EventSpec& ev) {
  Result res{Outcome::kGranted};
  res.serial = packages_.consume_one(st);
  ++granted_;
  static thread_local obs::CounterHandle granted("permits.granted");
  granted.add();
  obs::emit(obs::TraceEvent{obs::EventKind::kPermitGranted, 0, u,
                            res.serial.value_or(~0ULL), storage_});
  apply_event(u, ev, res);
  return res;
}

void CentralizedController::apply_event(NodeId u, const EventSpec& ev,
                                        Result& res) {
  switch (ev.type) {
    case EventSpec::Type::kNone:
      return;
    case EventSpec::Type::kAddLeaf:
      res.new_node = tree_.add_leaf(ev.subject);
      obs::emit(obs::TraceEvent{obs::EventKind::kLinkAdded, 0, res.new_node,
                                ev.subject, 0});
      return;
    case EventSpec::Type::kAddInternal:
      res.new_node = tree_.add_internal_above(ev.subject);
      obs::emit(obs::TraceEvent{obs::EventKind::kLinkAdded, 0, res.new_node,
                                tree_.parent(res.new_node), 0});
      return;
    case EventSpec::Type::kRemove: {
      DYNCON_INVARIANT(ev.subject == u, "remove request arrives at subject");
      // Graceful deletion: all packages of u move to its parent in one
      // message before u disappears (paper item 2, first bullet).
      packages_.move_all(u, tree_.parent(u));
      obs::emit(obs::TraceEvent{obs::EventKind::kLinkRemoved, 0, u,
                                tree_.parent(u), 0});
      tree_.remove_node(u);
      return;
    }
  }
}

void CentralizedController::start_reject_wave() {
  DYNCON_INVARIANT(!wave_, "reject wave started twice");
  wave_ = true;
  exhausted_ = true;
  // A reject package is placed at every node by splitting and moving: one
  // delivery per alive node.
  const auto nodes = tree_.alive_nodes();
  for (NodeId v : nodes) packages_.create_reject(v);
  packages_.charge_moves(nodes.size());
  obs::count("wave.count");
  obs::emit(obs::TraceEvent{obs::EventKind::kWaveStart, 0, tree_.root(),
                            nodes.size(), 0});
}

Result CentralizedController::distribute_and_grant(
    PackageId p, std::uint32_t j, const std::vector<NodeId>& path,
    std::uint64_t dist, NodeId u, const EventSpec& ev) {
  DYNCON_INVARIANT(path.size() == dist + 1 && path[dist] == packages_.get(p).host,
                   "path/host mismatch");
  PackageId cur = p;
  std::uint64_t cur_pos = dist;
  if (domains_) domains_->drop(cur);  // split/static-conversion cancels it

  const auto note_pass_down = [&](std::uint64_t from_pos,
                                  std::uint64_t to_pos,
                                  std::uint64_t permits) {
    if (!options_.on_pass_down) return;
    for (std::uint64_t pos = to_pos; pos < from_pos; ++pos) {
      options_.on_pass_down(path[pos], permits);
    }
  };

  for (std::uint32_t k = j; k >= 1; --k) {
    // Move the level-k package to u_{k-1} and split it there.
    const std::uint64_t uk_pos = params_.uk_distance(k - 1);
    DYNCON_INVARIANT(uk_pos < cur_pos, "u_{k-1} not strictly below host");
    note_pass_down(cur_pos, uk_pos, packages_.get(cur).size);
    packages_.move(cur, path[uk_pos], cur_pos - uk_pos);
    auto [stay, go] = packages_.split_mobile(cur);
    // `stay` (level k-1) remains at u_{k-1}; its domain is the
    // 2^(k-2)*psi nodes immediately below u_{k-1} on the path toward u.
    if (domains_) {
      const std::uint64_t dsize = params_.domain_size(k - 1);
      DYNCON_INVARIANT(dsize <= uk_pos, "domain would overrun the path");
      std::vector<NodeId> dom;
      dom.reserve(dsize);
      for (std::uint64_t i = 1; i <= dsize; ++i) {
        dom.push_back(path[uk_pos - i]);
      }
      domains_->assign(stay, std::move(dom));
    }
    cur = go;
    cur_pos = uk_pos;
  }

  // `cur` is now a level-0 package; deliver it to u and make it static.
  note_pass_down(cur_pos, 0, packages_.get(cur).size);
  packages_.move(cur, u, cur_pos);
  packages_.make_static(cur);
  return grant_from_static(cur, u, ev);
}

}  // namespace dyncon::core

#include "core/distributed_iterated.hpp"

#include <algorithm>
#include <utility>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "sim/watchdog.hpp"
#include "util/error.hpp"

namespace dyncon::core {

DistributedIterated::DistributedIterated(sim::Network& net,
                                         tree::DynamicTree& tree,
                                         std::uint64_t M, std::uint64_t W,
                                         std::uint64_t U, Options options)
    : net_(net), tree_(tree), m_(M), w_(W), u_(U),
      options_(std::move(options)) {
  DYNCON_REQUIRE(M >= 1 && U >= 1, "M, U must be >= 1");
  const bool first_is_final =
      (w_ >= 1 && m_ <= 4 * w_) || (w_ == 0 && m_ <= 4);
  DYNCON_REQUIRE(options_.serials.empty() || first_is_final,
                 "serial tracking requires a single (final) iteration");
  if (options_.watchdog != nullptr && options_.crashes != nullptr) {
    // The probe lives at this wrapper so it follows the current instance
    // across rotations (the iterations themselves get no watchdog).
    options_.watchdog->add_death_probe(this,
                                       [this] { return crash_recover(); });
  }
  start_iteration(m_);
}

DistributedIterated::~DistributedIterated() {
  if (options_.watchdog != nullptr && options_.crashes != nullptr) {
    options_.watchdog->remove_death_probe(this);
  }
}

bool DistributedIterated::crash_recover() {
  return inner_ != nullptr && inner_->crash_recover();
}

void DistributedIterated::start_iteration(std::uint64_t Mi) {
  ++iterations_;
  obs::count("controller.iterations");
  obs::emit(obs::TraceEvent{obs::EventKind::kIterationStart,
                            net_.queue().now(), tree_.root(), iterations_,
                            Mi});
  const bool is_final = (w_ >= 1 && Mi <= 4 * w_) || (w_ == 0 && Mi <= 4);
  std::uint64_t Wi;
  Mode inner_mode;
  if (is_final) {
    Wi = w_ >= 1 ? w_ : 1;
    inner_mode = w_ >= 1 ? options_.mode : Mode::kExhaustSignal;
    phase_ = Phase::kFinal;
  } else {
    Wi = std::max<std::uint64_t>(Mi / 2, 1);
    inner_mode = Mode::kExhaustSignal;
    phase_ = Phase::kIterating;
  }
  DistributedController::Options opts;
  opts.mode = inner_mode;
  opts.track_domains = options_.track_domains;
  opts.apply_events = options_.apply_events;
  opts.on_pass_down = options_.on_pass_down;
  opts.allow_unreliable_transport = options_.allow_unreliable_transport;
  opts.crashes = options_.crashes;
  opts.durability = options_.durability;
  opts.meter_persistence = options_.meter_persistence;
  // Liveness is enforced at this wrapper's submit boundary, not per
  // iteration: the watchdog is intentionally not forwarded here.
  if (iterations_ == 1) opts.serials = options_.serials;
  inner_ = std::make_unique<DistributedController>(
      net_, tree_, Params(Mi, Wi, u_), std::move(opts));
}

void DistributedIterated::complete_async(Callback done, Result r) {
  net_.queue().schedule_after(0, [done = std::move(done), r] { done(r); });
}

void DistributedIterated::apply_trivial(const RequestSpec& spec, Result& r) {
  if (!options_.apply_events) return;
  switch (spec.type) {
    case RequestSpec::Type::kEvent:
      return;
    case RequestSpec::Type::kAddLeaf:
      r.new_node = tree_.add_leaf(spec.subject);
      return;
    case RequestSpec::Type::kAddInternal:
      r.new_node = tree_.add_internal_above(spec.subject);
      return;
    case RequestSpec::Type::kRemove:
      tree_.remove_node(spec.subject);
      return;
  }
}

void DistributedIterated::dispatch(const RequestSpec& spec, Callback done,
                                   std::uint32_t redrives_left) {
  if (frozen_) {
    complete_async(std::move(done), Result{Outcome::kExhausted});
    return;
  }
  switch (phase_) {
    case Phase::kDone: {
      if (options_.mode == Mode::kRejectWave) {
        if (!wave_charged_) {
          // One reject package per node (the wave), charged once.
          messages_base_ += tree_.size();
          net_.charge(sim::Message::reject_wave(), tree_.size());
          wave_charged_ = true;
        }
        ++rejects_;
        complete_async(std::move(done), Result{Outcome::kRejected});
      } else {
        complete_async(std::move(done), Result{Outcome::kExhausted});
      }
      return;
    }
    case Phase::kTrivial: {
      if (trivial_storage_ == 0) {
        phase_ = Phase::kDone;
        dispatch(spec, std::move(done), redrives_left);
        return;
      }
      if (!tree_.alive(spec.subject)) {
        complete_async(std::move(done), Result{Outcome::kMoot});
        return;
      }
      const NodeId arrival = spec.type == RequestSpec::Type::kAddInternal
                                 ? tree_.parent(spec.subject)
                                 : spec.subject;
      --trivial_storage_;
      ++granted_base_;
      const std::uint64_t depth = tree_.depth(arrival);
      const std::uint64_t hops = 2 * depth;
      messages_base_ += hops;
      // The trivial phase walks one agent to the root and back; its hops
      // are modeled with a worst-case (deepest-point) hop message.
      net_.charge(sim::Message::agent_hop(granted_base_, depth, depth,
                                          /*bag_level=*/0, /*phase=*/0,
                                          /*carrying=*/true),
                  hops);
      Result r{Outcome::kGranted};
      apply_trivial(spec, r);
      complete_async(std::move(done), r);
      return;
    }
    case Phase::kIterating:
    case Phase::kFinal: {
      if (draining_) {
        pending_.emplace_back(spec, std::move(done));
        return;
      }
      ++inflight_;
      inner_->submit(spec, [this, spec, redrives_left,
                            done = std::move(done)](const Result& r) mutable {
        --inflight_;
        if (r.outcome == Outcome::kExhausted) {
          pending_.emplace_back(spec, std::move(done));
          draining_ = true;
        } else if (r.crash_failed && redrives_left > 0 && !frozen_) {
          // A crash killed the agent before any verdict: re-drive the
          // request instead of surfacing the synthetic rejection.
          obs::count("recovery.redrives");
          if (!tree_.alive(spec.subject)) {
            done(Result{Outcome::kMoot});
          } else {
            dispatch(spec, std::move(done), redrives_left - 1);
          }
        } else {
          if (r.outcome == Outcome::kRejected) ++rejects_;
          done(r);
        }
        maybe_finish_drain();
      });
      return;
    }
  }
}

void DistributedIterated::maybe_finish_drain() {
  if (inflight_ != 0) return;
  if (frozen_) {
    // Flush everything still pending as exhausted, then notify.
    auto pend = std::move(pending_);
    pending_.clear();
    for (auto& [spec, cb] : pend) {
      complete_async(std::move(cb), Result{Outcome::kExhausted});
    }
    if (on_frozen_) {
      auto cb = std::move(on_frozen_);
      on_frozen_ = nullptr;
      cb();
    }
    return;
  }
  if (draining_) rotate();
}

void DistributedIterated::rotate() {
  DYNCON_INVARIANT(inner_ != nullptr, "rotate without an active iteration");
  const std::uint64_t Wi = inner_->params().W();
  const std::uint64_t L = inner_->unused_permits();
  // Lemma 3.2 liveness via the reduction of Lemma 4.5, checked live.  A
  // crash adversary voids the bound: permits rescued from killed agents
  // sit as static packages nobody may ever claim.
  const bool crashy = options_.crashes != nullptr &&
                      !options_.crashes->schedule().crash_free();
  DYNCON_INVARIANT(crashy || L <= Wi,
                   "iteration leftover exceeds waste bound");
  obs::count("controller.rotations");
  obs::emit(obs::TraceEvent{obs::EventKind::kIterationRotate,
                            net_.queue().now(), tree_.root(), iterations_, L});
  messages_base_ += inner_->messages_used() + 2 * tree_.size();
  net_.charge(sim::Message::control(sim::ControlTopic::kRotate,
                                    std::max(L, tree_.size())),
              2 * tree_.size());
  granted_base_ += inner_->permits_granted();
  const bool was_final = phase_ == Phase::kFinal;
  inner_.reset();
  draining_ = false;

  if (was_final) {
    if (w_ == 0 && L > 0) {
      trivial_storage_ = L;
      phase_ = Phase::kTrivial;
    } else {
      phase_ = Phase::kDone;
    }
  } else if (L == 0) {
    phase_ = Phase::kDone;
  } else {
    start_iteration(L);
  }

  auto pend = std::move(pending_);
  pending_.clear();
  for (auto& [spec, cb] : pend) {
    dispatch(spec, std::move(cb), options_.crash_redrives);
  }
}

void DistributedIterated::freeze(std::function<void()> on_done) {
  DYNCON_REQUIRE(static_cast<bool>(on_done), "null freeze callback");
  frozen_ = true;
  on_frozen_ = std::move(on_done);
  maybe_finish_drain();
}

void DistributedIterated::submit(const RequestSpec& spec, Callback done) {
  DYNCON_REQUIRE(static_cast<bool>(done), "null completion callback");
  if (options_.watchdog != nullptr) {
    // Static label + stored origin keep arming allocation-free (PR 4).
    const sim::Watchdog::Token token =
        options_.watchdog->arm(spec.subject, request_type_name(spec.type));
    done = [wd = options_.watchdog, token,
            done = std::move(done)](const Result& r) {
      wd->disarm(token);
      done(r);
    };
  }
  dispatch(spec, std::move(done), options_.crash_redrives);
}

void DistributedIterated::submit_event(NodeId u, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kEvent, u}, std::move(done));
}

void DistributedIterated::submit_add_leaf(NodeId parent, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddLeaf, parent}, std::move(done));
}

void DistributedIterated::submit_add_internal_above(NodeId child,
                                                    Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddInternal, child},
         std::move(done));
}

void DistributedIterated::submit_remove(NodeId v, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kRemove, v}, std::move(done));
}

std::uint64_t DistributedIterated::messages_used() const {
  return messages_base_ + (inner_ ? inner_->messages_used() : 0);
}

std::uint64_t DistributedIterated::permits_granted() const {
  return granted_base_ + (inner_ ? inner_->permits_granted() : 0);
}

std::uint64_t DistributedIterated::unused_permits() const {
  return trivial_storage_ + (inner_ ? inner_->unused_permits() : 0);
}

// ---- DistributedTerminating ---------------------------------------------------

DistributedTerminating::DistributedTerminating(sim::Network& net,
                                               tree::DynamicTree& tree,
                                               std::uint64_t M,
                                               std::uint64_t W,
                                               std::uint64_t U,
                                               Options options)
    : net_(net),
      tree_(tree),
      inner_(net, tree, M, W, U, [&options] {
        DistributedIterated::Options o;
        o.mode = DistributedIterated::Mode::kExhaustSignal;
        o.track_domains = options.track_domains;
        o.apply_events = options.apply_events;
        o.serials = std::move(options.serials);
        o.on_pass_down = std::move(options.on_pass_down);
        o.watchdog = options.watchdog;
        o.allow_unreliable_transport = options.allow_unreliable_transport;
        o.crashes = options.crashes;
        o.durability = options.durability;
        o.meter_persistence = options.meter_persistence;
        o.crash_redrives = options.crash_redrives;
        return o;
      }()) {}

void DistributedTerminating::mark_terminated() {
  if (terminated_) return;
  terminated_ = true;
  // Broadcast of the termination signal + upcast of acknowledgements
  // (waiting for granted events to occur), per Observation 2.1.
  control_messages_ += 2 * tree_.size();
  net_.charge(sim::Message::control(sim::ControlTopic::kTerminate,
                                    tree_.size()),
              2 * tree_.size());
}

void DistributedTerminating::submit(const RequestSpec& spec, Callback done) {
  if (terminated_) {
    net_.queue().schedule_after(
        0, [done = std::move(done)] { done(Result{Outcome::kTerminated}); });
    return;
  }
  inner_.submit(spec, [this, done = std::move(done)](const Result& r) {
    if (r.outcome == Outcome::kExhausted) {
      mark_terminated();
      done(Result{Outcome::kTerminated});
      return;
    }
    // The "never rejects" contract has one carve-out: a crash-failed
    // request whose redrive budget ran out carries its flag to the caller.
    DYNCON_INVARIANT(r.outcome != Outcome::kRejected || r.crash_failed,
                     "terminating controller must never reject");
    done(r);
  });
}

void DistributedTerminating::submit_event(NodeId u, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kEvent, u}, std::move(done));
}

void DistributedTerminating::submit_add_leaf(NodeId parent, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddLeaf, parent}, std::move(done));
}

void DistributedTerminating::submit_add_internal_above(NodeId child,
                                                       Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddInternal, child},
         std::move(done));
}

void DistributedTerminating::submit_remove(NodeId v, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kRemove, v}, std::move(done));
}

void DistributedTerminating::terminate(std::function<void()> on_done) {
  DYNCON_REQUIRE(static_cast<bool>(on_done), "null terminate callback");
  if (terminated_) {
    net_.queue().schedule_after(0, std::move(on_done));
    return;
  }
  inner_.freeze([this, on_done = std::move(on_done)] {
    mark_terminated();
    on_done();
  });
}

std::uint64_t DistributedTerminating::messages_used() const {
  return inner_.messages_used() + control_messages_;
}

}  // namespace dyncon::core

#include "core/distributed_adaptive.hpp"

#include <algorithm>
#include <utility>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "sim/watchdog.hpp"
#include "util/error.hpp"

namespace dyncon::core {

DistributedAdaptive::DistributedAdaptive(sim::Network& net,
                                         tree::DynamicTree& tree,
                                         std::uint64_t M, std::uint64_t W,
                                         Options options)
    : net_(net), tree_(tree), options_(options), w_(W), mi_(M) {
  DYNCON_REQUIRE(M >= 1, "M must be >= 1");
  if (options_.watchdog != nullptr && options_.crashes != nullptr) {
    // One probe over both instances; no short-circuit, so a doomed holder
    // in the sidecar is collected even when the main instance acted.
    options_.watchdog->add_death_probe(this, [this] {
      const bool a = main_ != nullptr && main_->crash_recover();
      const bool b = counter_ != nullptr && counter_->crash_recover();
      return a || b;
    });
  }
  start_iteration();
}

DistributedAdaptive::~DistributedAdaptive() {
  if (options_.watchdog != nullptr && options_.crashes != nullptr) {
    options_.watchdog->remove_death_probe(this);
  }
}

void DistributedAdaptive::start_iteration() {
  ++iterations_;
  obs::count("controller.iterations");
  obs::emit(obs::TraceEvent{obs::EventKind::kIterationStart,
                            net_.queue().now(), tree_.root(), iterations_,
                            mi_});
  const std::uint64_t n = std::max<std::uint64_t>(tree_.size(), 1);
  max_n_ = std::max(max_n_, n);
  ui_ = options_.policy == Policy::kChangeCount ? 2 * n : 2 * max_n_;

  DistributedTerminating::Options main_opts;
  main_opts.track_domains = options_.track_domains;
  main_opts.allow_unreliable_transport = options_.allow_unreliable_transport;
  main_opts.crashes = options_.crashes;
  main_opts.durability = options_.durability;
  main_opts.meter_persistence = options_.meter_persistence;
  main_opts.crash_redrives = options_.crash_redrives;
  main_ = std::make_unique<DistributedTerminating>(net_, tree_, mi_, w_, ui_,
                                                   main_opts);

  DistributedTerminating::Options counter_opts;
  counter_opts.track_domains = false;   // accounting sidecar only
  counter_opts.apply_events = false;    // counts, never applies changes
  counter_opts.allow_unreliable_transport =
      options_.allow_unreliable_transport;
  counter_opts.crashes = options_.crashes;
  counter_opts.durability = options_.durability;
  counter_opts.meter_persistence = options_.meter_persistence;
  counter_opts.crash_redrives = options_.crash_redrives;
  counter_ = std::make_unique<DistributedTerminating>(
      net_, tree_, std::max<std::uint64_t>(ui_ / 2, 1),
      std::max<std::uint64_t>(ui_ / 4, 1), ui_, counter_opts);
}

void DistributedAdaptive::complete_async(Callback done, Result r) {
  net_.queue().schedule_after(0, [done = std::move(done), r] { done(r); });
}

void DistributedAdaptive::begin_rotation(bool main_exhausted) {
  if (rotating_ || done_) return;
  rotating_ = true;
  pending_drains_ = 2;
  auto drained = [this, main_exhausted] {
    if (--pending_drains_ > 0) return;
    // Defer the teardown to a fresh event: this callback runs inside the
    // draining controller's own call chain, which must fully unwind before
    // the controller object may be destroyed.
    net_.queue().schedule_after(
        0, [this, main_exhausted] { finish_rotation(main_exhausted); });
  };
  main_->terminate(drained);
  counter_->terminate(drained);
}

void DistributedAdaptive::finish_rotation(bool main_exhausted) {
  {
    obs::count("controller.rotations");
    obs::emit(obs::TraceEvent{obs::EventKind::kIterationRotate,
                              net_.queue().now(), tree_.root(), iterations_,
                              main_->permits_granted()});
    // Both controllers are quiescent: broadcast/upcast counts N_{i+1} and
    // Y_i and resets the data structures.
    const std::uint64_t yi = main_->permits_granted();
    messages_base_ += main_->messages_used() + counter_->messages_used() +
                      2 * tree_.size();
    net_.charge(sim::Message::control(
                    sim::ControlTopic::kRotate,
                    std::max<std::uint64_t>(tree_.size(), yi + 1)),
                2 * tree_.size());
    granted_base_ += yi;
    main_.reset();
    counter_.reset();
    DYNCON_INVARIANT(yi <= mi_, "granted more than the iteration budget");
    mi_ -= yi;
    rotating_ = false;
    if (main_exhausted || mi_ == 0) {
      done_ = true;
    } else {
      start_iteration();
    }
    auto pend = std::move(pending_);
    pending_.clear();
    for (auto& [spec, cb] : pend) dispatch(spec, std::move(cb));
  }
}

void DistributedAdaptive::submit_to_main(const RequestSpec& spec,
                                         Callback done) {
  main_->submit(spec, [this, spec, done = std::move(done)](
                          const Result& r) mutable {
    if (r.outcome == Outcome::kTerminated) {
      // The main (M_i, W)-controller exhausted: liveness is secured, so the
      // whole controller transitions to rejecting.  The triggering request
      // is itself rejected.
      if (!done_) {
        pending_.emplace_back(spec, std::move(done));
        begin_rotation(/*main_exhausted=*/true);
      } else {
        dispatch(spec, std::move(done));
      }
      return;
    }
    done(r);
  });
}

void DistributedAdaptive::dispatch(const RequestSpec& spec, Callback done) {
  if (done_) {
    if (!wave_charged_) {
      messages_base_ += tree_.size();
      net_.charge(sim::Message::reject_wave(), tree_.size());
      wave_charged_ = true;
    }
    ++rejects_;
    complete_async(std::move(done), Result{Outcome::kRejected});
    return;
  }
  if (rotating_) {
    pending_.emplace_back(spec, std::move(done));
    return;
  }
  if (!tree_.alive(spec.subject)) {
    complete_async(std::move(done), Result{Outcome::kMoot});
    return;
  }

  if (spec.type == RequestSpec::Type::kEvent) {
    submit_to_main(spec, std::move(done));
    return;
  }

  // Topological request: it must also be counted by the parallel
  // (U_i/2, U_i/4)-controller before the main controller may grant it.
  // The counting request is registered at the root: the count's semantics
  // do not depend on the arrival node, and the sidecar's agents must not
  // stand on nodes the main controller may delete (the two controllers
  // ignore each other's locks — App. A; see DESIGN.md for the
  // substitution note).
  counter_->submit_event(
      tree_.root(),
      [this, spec, done = std::move(done)](const Result& r) mutable {
        if (r.outcome == Outcome::kTerminated) {
          // >= U_i/4 changes this iteration: rotate, replay afterwards.
          pending_.emplace_back(spec, std::move(done));
          begin_rotation(/*main_exhausted=*/false);
          return;
        }
        if (r.outcome != Outcome::kGranted) {
          done(r);  // moot etc.
          return;
        }
        if (rotating_ || done_ || !tree_.alive(spec.subject)) {
          // The world moved while we were being counted.
          dispatch(spec, std::move(done));
          return;
        }
        submit_to_main(spec, std::move(done));
      });
}

void DistributedAdaptive::submit(const RequestSpec& spec, Callback done) {
  DYNCON_REQUIRE(static_cast<bool>(done), "null completion callback");
  if (options_.watchdog != nullptr) {
    // Static label + stored origin keep arming allocation-free (PR 4).
    const sim::Watchdog::Token token =
        options_.watchdog->arm(spec.subject, request_type_name(spec.type));
    done = [wd = options_.watchdog, token,
            done = std::move(done)](const Result& r) {
      wd->disarm(token);
      done(r);
    };
  }
  dispatch(spec, std::move(done));
}

void DistributedAdaptive::submit_event(NodeId u, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kEvent, u}, std::move(done));
}

void DistributedAdaptive::submit_add_leaf(NodeId parent, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddLeaf, parent}, std::move(done));
}

void DistributedAdaptive::submit_add_internal_above(NodeId child,
                                                    Callback done) {
  submit(RequestSpec{RequestSpec::Type::kAddInternal, child},
         std::move(done));
}

void DistributedAdaptive::submit_remove(NodeId v, Callback done) {
  submit(RequestSpec{RequestSpec::Type::kRemove, v}, std::move(done));
}

std::uint64_t DistributedAdaptive::messages_used() const {
  return messages_base_ + (main_ ? main_->messages_used() : 0) +
         (counter_ ? counter_->messages_used() : 0);
}

std::uint64_t DistributedAdaptive::permits_granted() const {
  return granted_base_ + (main_ ? main_->permits_granted() : 0);
}

}  // namespace dyncon::core

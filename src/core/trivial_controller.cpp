#include "core/trivial_controller.hpp"

#include "util/error.hpp"

namespace dyncon::core {

TrivialController::TrivialController(tree::DynamicTree& tree, std::uint64_t M)
    : tree_(tree), storage_(M) {
  DYNCON_REQUIRE(M >= 1, "M must be >= 1");
}

bool TrivialController::fetch_permit(NodeId u) {
  // Request travels to the root; a permit or a reject travels back.
  cost_ += 2 * tree_.depth(u);
  if (storage_ == 0) {
    ++rejects_;
    return false;
  }
  --storage_;
  ++granted_;
  return true;
}

Result TrivialController::request_event(NodeId u) {
  DYNCON_REQUIRE(tree_.alive(u), "request at dead node");
  return Result{fetch_permit(u) ? Outcome::kGranted : Outcome::kRejected};
}

Result TrivialController::request_add_leaf(NodeId parent) {
  DYNCON_REQUIRE(tree_.alive(parent), "add_leaf: parent not alive");
  Result r{fetch_permit(parent) ? Outcome::kGranted : Outcome::kRejected};
  if (r.granted()) r.new_node = tree_.add_leaf(parent);
  return r;
}

Result TrivialController::request_add_internal_above(NodeId child) {
  DYNCON_REQUIRE(tree_.alive(child) && child != tree_.root(),
                 "bad add_internal request");
  Result r{fetch_permit(tree_.parent(child)) ? Outcome::kGranted
                                             : Outcome::kRejected};
  if (r.granted()) r.new_node = tree_.add_internal_above(child);
  return r;
}

Result TrivialController::request_remove(NodeId v) {
  DYNCON_REQUIRE(tree_.alive(v) && v != tree_.root(), "bad remove request");
  Result r{fetch_permit(v) ? Outcome::kGranted : Outcome::kRejected};
  if (r.granted()) tree_.remove_node(v);
  return r;
}

}  // namespace dyncon::core

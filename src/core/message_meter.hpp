#pragma once

// Metering another protocol's traffic through the controller (§2.2).
//
// "A controller may also control and count any type of non-topological
//  event, e.g., sales of tickets by different nodes, or even the number of
//  messages sent by some other protocol [4]."
//
// MessageMeter is that adapter: a protocol that wants to send a message
// from node u first asks the controller for a permit (a non-topological
// request at u); only if granted does the message go out.  The composite
// guarantees the metered protocol sends at most M messages network-wide —
// a global budget enforced with no global coordination beyond the
// controller's own amortized-polylog traffic.
//
// Because permits are cached in packages near senders, a chatty node pays
// O(1) amortized controller messages per metered message instead of a
// round trip to wherever the "budget server" lives.

#include <cstdint>
#include <functional>

#include "core/controller_iface.hpp"
#include "sim/network.hpp"

namespace dyncon::core {

class MessageMeter {
 public:
  /// `ctrl` supplies the permits; `net` carries the metered messages.
  MessageMeter(IController& ctrl, sim::Network& net);

  /// Attempt to send one metered message; returns true (and sends) iff the
  /// controller granted a permit for it.
  bool send(NodeId from, NodeId to, std::uint64_t payload_bits,
            sim::Network::Deliver on_deliver);

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }

  /// Controller traffic spent on metering so far (the adapter's overhead).
  [[nodiscard]] std::uint64_t metering_cost() const { return ctrl_.cost(); }

 private:
  IController& ctrl_;
  sim::Network& net_;
  std::uint64_t sent_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace dyncon::core

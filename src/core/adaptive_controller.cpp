#include "core/adaptive_controller.hpp"

#include <algorithm>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dyncon::core {

AdaptiveController::AdaptiveController(tree::DynamicTree& tree,
                                       std::uint64_t M, std::uint64_t W,
                                       Options options)
    : tree_(tree), options_(options), w_(W), mi_(M) {
  DYNCON_REQUIRE(M >= 1, "M must be >= 1");
  start_iteration();
}

void AdaptiveController::start_iteration() {
  ++iterations_;
  obs::count("controller.iterations");
  const std::uint64_t n = tree_.size();
  max_n_ = std::max(max_n_, n);
  ui_ = options_.policy == Policy::kChangeCount ? 2 * n : 2 * max_n_;
  zi_ = 0;
  adds_ = 0;
  TerminatingController::Options opts;
  opts.track_domains = options_.track_domains;
  inner_ = std::make_unique<TerminatingController>(tree_, mi_, w_, ui_,
                                                   std::move(opts));
}

bool AdaptiveController::should_rotate() const {
  if (options_.policy == Policy::kChangeCount) {
    return zi_ >= std::max<std::uint64_t>(ui_ / 4, 1);
  }
  // Size doubling, with the additions guard keeping the U_i bound sound.
  return tree_.size() >= 2 * max_n_ || adds_ >= std::max<std::uint64_t>(
                                                    max_n_, 1);
}

void AdaptiveController::rotate() {
  obs::count("controller.rotations");
  obs::emit(obs::TraceEvent{obs::EventKind::kIterationRotate, 0, tree_.root(),
                            iterations_, zi_});
  // End-of-iteration bookkeeping: terminate the inner controller (its
  // broadcast/upcast verifies granted events), then one more broadcast and
  // upcast counts N_{i+1} and Y_i and resets the data structure.
  inner_->terminate_now();
  const std::uint64_t yi = inner_->permits_granted();
  cost_base_ += inner_->cost() + 2 * tree_.size();
  granted_base_ += yi;
  inner_.reset();
  DYNCON_INVARIANT(yi <= mi_, "granted more than the iteration budget");
  mi_ -= yi;
  if (mi_ == 0) {
    done_ = true;
    return;
  }
  start_iteration();
}

template <typename Fn>
Result AdaptiveController::run(Fn&& submit, bool topological) {
  for (;;) {
    if (done_) {
      if (!wave_charged_) {
        cost_base_ += tree_.size();  // the outer reject wave
        wave_charged_ = true;
      }
      ++rejects_;
      return Result{Outcome::kRejected};
    }
    Result r = submit(*inner_);
    if (r.outcome == Outcome::kTerminated) {
      // The inner (M_i, W)-controller exhausted on its own: at most W
      // permits remain unused anywhere, so the controller rejects from
      // here on (liveness is already secured).
      cost_base_ += inner_->cost();
      granted_base_ += inner_->permits_granted();
      inner_.reset();
      done_ = true;
      continue;
    }
    if (r.granted() && topological) {
      ++zi_;
      if (r.new_node != kNoNode) ++adds_;
      if (should_rotate()) rotate();
    }
    return r;
  }
}

Result AdaptiveController::request_event(NodeId u) {
  return run([&](TerminatingController& c) { return c.request_event(u); },
             false);
}

Result AdaptiveController::request_add_leaf(NodeId parent) {
  return run(
      [&](TerminatingController& c) { return c.request_add_leaf(parent); },
      true);
}

Result AdaptiveController::request_add_internal_above(NodeId child) {
  return run(
      [&](TerminatingController& c) {
        return c.request_add_internal_above(child);
      },
      true);
}

Result AdaptiveController::request_remove(NodeId v) {
  return run([&](TerminatingController& c) { return c.request_remove(v); },
             true);
}

std::uint64_t AdaptiveController::cost() const {
  return cost_base_ + (inner_ ? inner_->cost() : 0);
}

std::uint64_t AdaptiveController::permits_granted() const {
  return granted_base_ + (inner_ ? inner_->permits_granted() : 0);
}

}  // namespace dyncon::core

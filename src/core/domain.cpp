#include "core/domain.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace dyncon::core {

namespace {
const std::vector<NodeId> kEmptyPath;
}

DomainTracker::DomainTracker(const tree::DynamicTree& tree,
                             const Params& params,
                             const PackageTable& packages)
    : tree_(tree), params_(params), packages_(packages) {}

void DomainTracker::assign(PackageId p, std::vector<NodeId> path) {
  DYNCON_REQUIRE(!domains_.contains(p), "package already has a domain");
  for (NodeId v : path) member_of_[v].insert(p);
  domains_.emplace(p, std::move(path));
}

void DomainTracker::drop(PackageId p) {
  auto it = domains_.find(p);
  if (it == domains_.end()) return;
  for (NodeId v : it->second) {
    auto mit = member_of_.find(v);
    if (mit != member_of_.end()) {
      mit->second.erase(p);
      if (mit->second.empty()) member_of_.erase(mit);
    }
  }
  domains_.erase(it);
}

const std::vector<NodeId>& DomainTracker::domain(PackageId p) const {
  auto it = domains_.find(p);
  return it == domains_.end() ? kEmptyPath : it->second;
}

void DomainTracker::on_add_leaf(NodeId, NodeId) {
  // Case 3: no effect on any domain.
}

void DomainTracker::on_remove_leaf(NodeId, NodeId) {
  // Case 5: the removed node stays a member of every domain it was in.
}

void DomainTracker::on_remove_internal(NodeId, NodeId,
                                       const std::vector<NodeId>&) {
  // Case 5, as above.
}

void DomainTracker::on_add_internal(NodeId u, NodeId /*parent*/,
                                    NodeId child) {
  // Case 4: u was inserted as the parent of `child`; for every domain that
  // contains `child`, u joins the domain and the bottommost alive member
  // leaves it.
  auto mit = member_of_.find(child);
  if (mit == member_of_.end()) return;
  // Copy: we mutate member_of_ while iterating.
  const std::vector<PackageId> affected(mit->second.begin(),
                                        mit->second.end());
  for (PackageId p : affected) {
    auto dit = domains_.find(p);
    DYNCON_INVARIANT(dit != domains_.end(), "stale member_of entry");
    std::vector<NodeId>& path = dit->second;
    auto pos = std::find(path.begin(), path.end(), child);
    DYNCON_INVARIANT(pos != path.end(), "member_of/domain mismatch");
    path.insert(pos, u);
    member_of_[u].insert(p);
    // Remove the bottommost (last in path order) alive member.
    for (auto rit = path.rbegin(); rit != path.rend(); ++rit) {
      if (tree_.alive(*rit)) {
        const NodeId gone = *rit;
        path.erase(std::next(rit).base());
        auto git = member_of_.find(gone);
        DYNCON_INVARIANT(git != member_of_.end(), "member index missing");
        git->second.erase(p);
        if (git->second.empty()) member_of_.erase(git);
        break;
      }
    }
  }
}

std::string DomainTracker::check_invariants() const {
  std::ostringstream bad;
  // Per-level disjointness bookkeeping.
  std::unordered_map<std::uint32_t, std::unordered_set<NodeId>> level_members;

  for (PackageId p : packages_.all_alive()) {
    const Package& pkg = packages_.get(p);
    if (pkg.kind != PackageKind::kMobile) continue;
    if (pkg.host == kNoNode) continue;  // carried by an agent mid-Proc
    auto it = domains_.find(p);
    if (it == domains_.end()) {
      // At audit (quiescent) points every hosted mobile package must have a
      // domain; only packages carried inside an agent's Bag may lack one.
      bad << "mobile package " << p << " (level " << pkg.level
          << ") has no domain";
      return bad.str();
    }
    const auto& path = it->second;

    // Invariant 1: exact size.
    const std::uint64_t want = params_.domain_size(pkg.level);
    if (path.size() != want) {
      bad << "package " << p << " level " << pkg.level << " domain size "
          << path.size() << " != " << want;
      return bad.str();
    }

    // Invariant 2: same-level disjointness.
    auto& seen = level_members[pkg.level];
    for (NodeId v : path) {
      if (!seen.insert(v).second) {
        bad << "node " << v << " in two level-" << pkg.level << " domains";
        return bad.str();
      }
    }

    // Invariant 3: alive members form a downward path from a child of the
    // host.
    std::vector<NodeId> alive;
    for (NodeId v : path) {
      if (tree_.alive(v)) alive.push_back(v);
    }
    if (!alive.empty()) {
      if (!tree_.alive(pkg.host)) {
        bad << "package " << p << " hosted at dead node " << pkg.host;
        return bad.str();
      }
      if (tree_.parent(alive.front()) != pkg.host) {
        bad << "package " << p << ": top alive domain member "
            << alive.front() << " is not a child of host " << pkg.host;
        return bad.str();
      }
      for (std::size_t i = 1; i < alive.size(); ++i) {
        if (tree_.parent(alive[i]) != alive[i - 1]) {
          bad << "package " << p << ": domain members " << alive[i - 1]
              << " -> " << alive[i] << " not a parent/child chain";
          return bad.str();
        }
      }
    }
  }
  return {};
}

}  // namespace dyncon::core

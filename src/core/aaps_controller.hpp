#pragma once

// Reimplementation of the Afek–Awerbuch–Plotkin–Saks controller ([4],
// J. ACM 1996) — the baseline this paper improves on.
//
// AAPS stores permits in *bins* at predetermined depths: a node at depth d
// owns a bin of level i for every i with 2^i | d; the root's top bin is the
// permit storage.  The supervisor of a level-i bin at v is the level-(i+1)
// bin at the nearest ancestor whose depth is divisible by 2^(i+1) (possibly
// v itself).  A request consumes from its node's level-0 bin; an empty bin
// replenishes a full bin-load from its supervisor, recursively.  Because
// bin placement is a function of the node's exact depth, this design only
// survives topological changes that preserve all depths — i.e. leaf
// insertions, exactly the dynamic model of [4]; every other change throws.
//
// Faithfulness note (see DESIGN.md §3): [4] has no public implementation;
// this is a from-scratch reconstruction of its bin hierarchy with the bin
// granularity chosen so that total waste stays <= W (phi is scaled down by
// the number of levels).  Constants differ from the 1996 original; the
// asymptotic shape O(N log^2 N) per the paper's comparison is preserved,
// which is what EXP3 measures.

#include <cstdint>
#include <unordered_map>

#include "core/controller_iface.hpp"
#include "tree/dynamic_tree.hpp"

namespace dyncon::core {

class AAPSController final : public IController {
 public:
  /// U is the a-priori bound on nodes ever to exist (as in [4]).
  AAPSController(tree::DynamicTree& tree, std::uint64_t M, std::uint64_t W,
                 std::uint64_t U);

  Result request_event(NodeId u) override;
  Result request_add_leaf(NodeId parent) override;
  /// Not supported by the AAPS dynamic model.
  Result request_add_internal_above(NodeId child) override;
  /// Not supported by the AAPS dynamic model.
  Result request_remove(NodeId v) override;

  [[nodiscard]] std::uint64_t cost() const override { return cost_; }
  [[nodiscard]] std::uint64_t permits_granted() const override {
    return granted_;
  }
  [[nodiscard]] std::uint64_t rejects_delivered() const { return rejects_; }
  [[nodiscard]] bool reject_wave_started() const { return wave_; }

 private:
  struct BinKey {
    NodeId node;
    std::uint32_t level;
    bool operator==(const BinKey&) const = default;
  };
  struct BinKeyHash {
    std::size_t operator()(const BinKey& k) const {
      return std::hash<std::uint64_t>{}(k.node * 0x9e3779b97f4a7c15ULL ^
                                        k.level);
    }
  };

  [[nodiscard]] std::uint64_t capacity(std::uint32_t level) const;
  /// Ensure bin (v, level) holds >= need permits if the hierarchy above can
  /// supply them; returns the bin's content afterwards.
  std::uint64_t pull(NodeId v, std::uint64_t depth, std::uint32_t level,
                     std::uint64_t need);
  Result handle(NodeId u);

  tree::DynamicTree& tree_;
  std::uint64_t phi_;
  std::uint32_t top_level_;
  std::unordered_map<BinKey, std::uint64_t, BinKeyHash> bins_;
  std::uint64_t granted_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t cost_ = 0;
  bool wave_ = false;
};

}  // namespace dyncon::core

#pragma once

// The taxi layer (§4.3.2): carries agents hop by hop over tree edges.
//
// Hops are network messages (one message per hop — the unit of the paper's
// message complexity).  Deliveries honor the "graceful manner" contract of
// §4.2:
//
//   * an Up hop from node c is resolved against the topology *at delivery
//     time* ("a message sent to a parent who is being deleted is ...
//     received by the new parent").  The sender c is always alive at
//     delivery because only the hopping agent could delete it and it is
//     mid-hop.
//   * a Down hop is addressed to the concrete child recorded in the
//     whiteboard's down pointer; that child is locked by the hopping agent,
//     so it cannot disappear, and graceful edge insertion forwards the
//     message across any newly spliced-in node at no modeled cost.
//
// The taxi also offers a zero-message local resume used when a queued agent
// is dequeued after an unlock.

#include <functional>

#include "agent/whiteboard.hpp"
#include "sim/network.hpp"
#include "tree/dynamic_tree.hpp"

namespace dyncon::agent {

class Taxi {
 public:
  /// (agent, node it arrived at, child it came from or kNoNode).
  /// std::function is fine here: installed once at controller construction,
  /// never stored per hop (each hop's InlineFn continuation captures only
  /// `this` + ids and calls through this one handler).
  using Arrival = std::function<void(AgentId, NodeId, NodeId)>;

  Taxi(sim::Network& net, tree::DynamicTree& tree);

  void set_on_arrival(Arrival handler);

  /// One hop toward the root; `from` must not be the root.  `msg` is the
  /// encoded agent state the hop carries (kind must be kAgent); its
  /// measured size is what the network charges.
  void hop_up(AgentId a, NodeId from, const sim::Message& msg);

  /// One hop to child `to` of `from` (per the stored down pointer).
  void hop_down(AgentId a, NodeId from, NodeId to, const sim::Message& msg);

  /// Immediate local re-entry (dequeue after unlock); no message.
  void resume_local(AgentId a, NodeId at, NodeId came_from);

  [[nodiscard]] sim::Network& network() { return net_; }

 private:
  sim::Network& net_;
  tree::DynamicTree& tree_;
  Arrival on_arrival_;
};

}  // namespace dyncon::agent

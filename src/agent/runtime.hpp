#pragma once

// Shared agent-runtime helpers: id allocation and the O(log N)-bit
// *memory* model for parked agent state.
//
// An agent in flight carries: its distance counter (<= current tree depth,
// so O(log N) bits — §4.4.1 argues the locked path keeps the counter below
// the live node count), its DistToTop counter, its Bag (a package level,
// O(log log U) bits), and a constant number of phase/flag bits.  Wire sizes
// are no longer modeled here — they are measured by encoding a typed
// `sim::Message` (sim/wire.hpp).  `agent_message_bits` remains only as the
// Claim 4.8 accounting for an agent's state parked in a whiteboard queue.

#include <cstdint>

#include "util/ids.hpp"
#include "util/log2.hpp"

namespace dyncon::agent {

/// Monotone agent-id source.
class AgentIdAllocator {
 public:
  [[nodiscard]] std::uint64_t next() { return next_++; }

 private:
  std::uint64_t next_ = 0;
};

/// Modeled size (bits) of one agent's parked state when the tree currently
/// has `n` live nodes and package levels go up to `max_level` — the
/// per-waiter term of the Claim 4.8 whiteboard memory accounting.
[[nodiscard]] inline std::uint64_t agent_message_bits(std::uint64_t n,
                                                      std::uint32_t max_level) {
  const std::uint64_t counter_bits = ceil_log2(n < 2 ? 2 : n) + 1;
  const std::uint64_t bag_bits =
      ceil_log2(max_level < 2 ? 2 : max_level) + 1;
  return 2 * counter_bits + bag_bits + 8;  // two counters, bag, phase/flags
}

}  // namespace dyncon::agent

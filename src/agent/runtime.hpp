#pragma once

// Shared agent-runtime helpers: id allocation and the O(log N)-bit message
// encoding model.
//
// An agent in flight carries: its distance counter (<= current tree depth,
// so O(log N) bits — §4.4.1 argues the locked path keeps the counter below
// the live node count), its DistToTop counter, its Bag (a package level,
// O(log log U) bits), and a constant number of phase/flag bits.  Message
// payload sizes reported to the network use this encoding so the
// max-message-bits statistic is meaningful for the paper's O(log N) claim.

#include <cstdint>

#include "util/ids.hpp"
#include "util/log2.hpp"

namespace dyncon::agent {

/// Monotone agent-id source.
class AgentIdAllocator {
 public:
  [[nodiscard]] std::uint64_t next() { return next_++; }

 private:
  std::uint64_t next_ = 0;
};

/// Modeled encoded size (bits) of an agent message when the tree currently
/// has `n` live nodes and package levels go up to `max_level`.
[[nodiscard]] inline std::uint64_t agent_message_bits(std::uint64_t n,
                                                      std::uint32_t max_level) {
  const std::uint64_t counter_bits = ceil_log2(n < 2 ? 2 : n) + 1;
  const std::uint64_t bag_bits =
      ceil_log2(max_level < 2 ? 2 : max_level) + 1;
  return 2 * counter_bits + bag_bits + 8;  // two counters, bag, phase/flags
}

/// Modeled encoded size of a control/application message carrying one
/// O(log n)-bit value.
[[nodiscard]] inline std::uint64_t value_message_bits(std::uint64_t value) {
  return ceil_log2(value < 2 ? 2 : value) + 9;
}

}  // namespace dyncon::agent

#include "agent/taxi.hpp"

#include <utility>

#include "util/error.hpp"

namespace dyncon::agent {

Taxi::Taxi(sim::Network& net, tree::DynamicTree& tree)
    : net_(net), tree_(tree) {}

void Taxi::set_on_arrival(Arrival handler) {
  on_arrival_ = std::move(handler);
}

void Taxi::hop_up(AgentId a, NodeId from, const sim::Message& msg) {
  DYNCON_REQUIRE(tree_.alive(from) && from != tree_.root(),
                 "hop_up from the root or a dead node");
  DYNCON_REQUIRE(msg.kind() == sim::MsgKind::kAgent,
                 "the taxi carries agent messages only");
  // Destination resolved at delivery time (graceful deletions can reparent
  // `from` while the hop is in flight).
  net_.send(from, tree_.parent(from), msg,
            [this, a, from] {
              DYNCON_INVARIANT(tree_.alive(from),
                               "hop_up sender died mid-flight");
              on_arrival_(a, tree_.parent(from), from);
            });
}

void Taxi::hop_down(AgentId a, NodeId from, NodeId to,
                    const sim::Message& msg) {
  DYNCON_REQUIRE(tree_.alive(to), "hop_down to a dead node");
  DYNCON_REQUIRE(msg.kind() == sim::MsgKind::kAgent,
                 "the taxi carries agent messages only");
  net_.send(from, to, msg,
            [this, a, from, to] {
              DYNCON_INVARIANT(tree_.alive(to),
                               "hop_down target died mid-flight");
              on_arrival_(a, to, from);
            });
}

void Taxi::resume_local(AgentId a, NodeId at, NodeId came_from) {
  // Fires before any in-flight message (all link delays are >= 1 tick), so
  // a dequeued agent acts before newly arriving ones, as §4.3.1 requires.
  net_.queue().schedule_after(0, [this, a, at, came_from] {
    on_arrival_(a, at, came_from);
  });
}

}  // namespace dyncon::agent

// Intentionally small: the agent runtime is header-only apart from this
// translation unit, which exists so the library has a home for future
// out-of-line helpers and so dyncon_agent always produces an archive.
#include "agent/runtime.hpp"

namespace dyncon::agent {
// (no out-of-line definitions yet)
}  // namespace dyncon::agent

#pragma once

// Whiteboards: the per-node storage of the mobile-agent model (§4.3.1).
//
// A whiteboard holds the node's lock state, the FIFO queue of agents waiting
// for the lock, and the "down pointer" the taxi layer records for the
// locking agent ("the pointer to the edge leading to the child from which
// the locking agent arrived").  Packages are stored separately in the
// controller's PackageTable; the whiteboard is pure coordination state.
//
// Locking discipline (paper §4.1/§4.3): an agent locks every node on its
// way toward the root and releases top-down on its way back; an agent that
// reaches a locked node waits in the FIFO queue and, when dequeued,
// "continues its actions assuming it has just entered the node".

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace dyncon::agent {

using AgentId = std::uint64_t;
inline constexpr AgentId kNoAgent = static_cast<AgentId>(-1);

/// One node's coordination state.
struct Whiteboard {
  bool locked = false;
  AgentId locked_by = kNoAgent;
  /// Child the locking agent arrived from (kNoNode when it was created
  /// here); consumed by the taxi's Down operation.
  NodeId down_child = kNoNode;
  /// Agents waiting for the lock, FIFO.  Each entry remembers the child the
  /// agent arrived from so it can restore its own down pointer on resume.
  struct Waiter {
    AgentId agent;
    NodeId came_from;
    bool operator==(const Waiter&) const = default;
  };
  std::deque<Waiter> queue;
  /// Reject-wave flood marker (each node is flooded at most once).
  bool flooded = false;

  bool operator==(const Whiteboard&) const = default;
};

/// Whiteboards for all nodes of one controller instance.
///
/// NodeIds are dense vector indices (tree::DynamicTree allocates them that
/// way), so the boards live in an indexed deque grown on demand: the
/// per-hop locked/lock/unlock operations index directly instead of hashing.
/// A deque (not a vector) because growth at the end leaves references to
/// existing boards valid — callers hold a `Whiteboard&` across code that
/// may create boards for new nodes, a stability guarantee the previous
/// unordered_map also gave.  An index past the end — or a default-state
/// entry — both mean "no coordination state", i.e., a fresh whiteboard.
class WhiteboardManager {
 public:
  /// Whiteboard of `v`, created empty on first access.
  Whiteboard& at(NodeId v) {
    while (v >= boards_.size()) boards_.emplace_back();
    return boards_[v];
  }
  [[nodiscard]] const Whiteboard& at(NodeId v) const;

  [[nodiscard]] bool locked(NodeId v) const;

  /// Lock `v` for `a`, recording the arrival child.  Requires unlocked.
  void lock(NodeId v, AgentId a, NodeId came_from);

  /// Unlock `v` (must be held by `a`).  Returns the next waiter to resume,
  /// if any (the caller reschedules it; FIFO order).
  [[nodiscard]] std::optional<Whiteboard::Waiter> unlock(NodeId v, AgentId a);

  /// Clear the lock without dequeuing anyone (used just before the node is
  /// removed and its whole queue is evicted to the parent).
  void release_for_removal(NodeId v, AgentId a);

  /// Enqueue a waiting agent at locked node `v`.
  void enqueue(NodeId v, AgentId a, NodeId came_from);

  /// Graceful deletion: move v's queue to `parent` (appended in order) and
  /// drop v's whiteboard.  Returns the number of agents moved.  If the
  /// parent is unlocked and gained waiters, the first is returned so the
  /// caller can resume it.
  struct EvictResult {
    std::size_t moved = 0;
    std::optional<Whiteboard::Waiter> resume;
  };
  EvictResult evict_to_parent(NodeId v, NodeId parent);

  /// Dirty-board observer (the durable-whiteboard journal): called with the
  /// node id after every mutation through this manager.  One branch per
  /// mutation when unset.  Callers that mutate a board *directly* through
  /// at() (the reject-flood marker, the add-internal queue splice) must
  /// call mark_dirty themselves.
  void set_observer(std::function<void(NodeId)> on_dirty) {
    on_dirty_ = std::move(on_dirty);
  }
  void mark_dirty(NodeId v) {
    if (on_dirty_) on_dirty_(v);
  }

 private:
  std::deque<Whiteboard> boards_;
  std::function<void(NodeId)> on_dirty_;
};

}  // namespace dyncon::agent

#pragma once

// Whiteboards: the per-node storage of the mobile-agent model (§4.3.1).
//
// A whiteboard holds the node's lock state, the FIFO queue of agents waiting
// for the lock, and the "down pointer" the taxi layer records for the
// locking agent ("the pointer to the edge leading to the child from which
// the locking agent arrived").  Packages are stored separately in the
// controller's PackageTable; the whiteboard is pure coordination state.
//
// Locking discipline (paper §4.1/§4.3): an agent locks every node on its
// way toward the root and releases top-down on its way back; an agent that
// reaches a locked node waits in the FIFO queue and, when dequeued,
// "continues its actions assuming it has just entered the node".

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "util/error.hpp"
#include "util/ids.hpp"

namespace dyncon::agent {

using AgentId = std::uint64_t;
inline constexpr AgentId kNoAgent = static_cast<AgentId>(-1);

/// One parked agent: who is waiting and the child it arrived from (so it can
/// restore its own down pointer on resume).
struct Waiter {
  AgentId agent;
  NodeId came_from;
  bool operator==(const Waiter&) const = default;
};

/// Whiteboards for all nodes of one controller instance.
///
/// NodeIds are dense vector indices (tree::DynamicTree allocates them that
/// way), so the boards live in structure-of-arrays form (PR 9): one parallel
/// POD column per field — `locked_by`, `down_child`, `flooded` — plus a
/// deque-of-deques for the wait queues.  The per-hop locked/lock/unlock
/// operations index one 8-byte column instead of striding over a 64+-byte
/// record, and whole-tree sweeps (the crash-recovery lock scan, the Claim
/// 4.8 memory audit, snapshot encoding) walk each column cache-linearly.
///
/// There is no stored `locked` flag: a node is locked iff its `locked_by`
/// entry is a real agent (lock() always records the holder, so the two were
/// always equal).  An index past the end — or a default-state entry — both
/// mean "no coordination state", i.e., a fresh whiteboard.
///
/// The queues live in a deque-of-deques (not vector-of-deques) because
/// growth at the end leaves references to existing queues valid — callers
/// hold a `Queue&` across code that may create boards for new nodes (the
/// add-internal splice), a stability guarantee the previous deque-of-structs
/// layout also gave.  The POD columns are plain vectors: they hand out
/// values, never references.
class WhiteboardManager {
 public:
  using Queue = std::deque<Waiter>;

  [[nodiscard]] bool locked(NodeId v) const {
    return locked_by(v) != kNoAgent;
  }
  [[nodiscard]] AgentId locked_by(NodeId v) const {
    return v < locked_by_.size() ? locked_by_[v] : kNoAgent;
  }
  /// Child the locking agent arrived from (kNoNode when it was created
  /// here); consumed by the taxi's Down operation.
  [[nodiscard]] NodeId down_child(NodeId v) const {
    return v < down_child_.size() ? down_child_[v] : kNoNode;
  }
  /// Reject-wave flood marker (each node is flooded at most once).
  [[nodiscard]] bool flooded(NodeId v) const {
    return v < flooded_.size() && flooded_[v] != 0;
  }
  /// Direct flood-marker write (the reject wave).  A direct mutation in the
  /// set_observer sense: the caller must mark_dirty itself.
  void set_flooded(NodeId v, bool f) {
    grow(v);
    flooded_[v] = f ? 1 : 0;
  }

  /// Agents waiting for v's lock, FIFO.
  [[nodiscard]] const Queue& queue(NodeId v) const;
  /// Mutable queue access (the add-internal splice, the crash kill sweep).
  /// A direct mutation: the caller must mark_dirty itself.  The reference
  /// stays valid across board growth (deque-of-deques).
  [[nodiscard]] Queue& queue_mut(NodeId v) {
    grow(v);
    return queues_[v];
  }

  /// Number of board slots in the columns (scan bound for sweeps).
  [[nodiscard]] std::size_t board_count() const { return locked_by_.size(); }

  /// Lock `v` for `a`, recording the arrival child.  Requires unlocked.
  void lock(NodeId v, AgentId a, NodeId came_from);

  /// Unlock `v` (must be held by `a`).  Returns the next waiter to resume,
  /// if any (the caller reschedules it; FIFO order).
  [[nodiscard]] std::optional<Waiter> unlock(NodeId v, AgentId a);

  /// Clear the lock without dequeuing anyone (used just before the node is
  /// removed and its whole queue is evicted to the parent).
  void release_for_removal(NodeId v, AgentId a);

  /// Enqueue a waiting agent at locked node `v`.
  void enqueue(NodeId v, AgentId a, NodeId came_from);

  /// Graceful deletion: move v's queue to `parent` (appended in order) and
  /// drop v's whiteboard.  Returns the number of agents moved.  If the
  /// parent is unlocked and gained waiters, the first is returned so the
  /// caller can resume it.
  struct EvictResult {
    std::size_t moved = 0;
    std::optional<Waiter> resume;
  };
  EvictResult evict_to_parent(NodeId v, NodeId parent);

  /// Crash damage: reset v to a blank board (volatile whiteboards lose
  /// everything).  Queue capacity is retained.  Callers persist or kill the
  /// casualties themselves; no observer notification fires here.
  void wipe(NodeId v);

  /// Journal replay: overwrite v's whole board in one shot (on_restart).
  /// No observer notification — re-persisting what was just restored would
  /// only churn the journal.
  void restore(NodeId v, AgentId locked_by, NodeId down_child, bool flooded,
               Queue queue);

  /// Dirty-board observer (the durable-whiteboard journal): called with the
  /// node id after every mutation through this manager.  One branch per
  /// mutation when unset.  Callers that mutate a board *directly* — via
  /// set_flooded or queue_mut — must call mark_dirty themselves.
  void set_observer(std::function<void(NodeId)> on_dirty) {
    on_dirty_ = std::move(on_dirty);
  }
  void mark_dirty(NodeId v) {
    if (on_dirty_) on_dirty_(v);
  }

 private:
  void grow(NodeId v) {
    if (v < locked_by_.size()) return;
    const std::size_t n = static_cast<std::size_t>(v) + 1;
    locked_by_.resize(n, kNoAgent);
    down_child_.resize(n, kNoNode);
    flooded_.resize(n, 0);
    while (queues_.size() < n) queues_.emplace_back();
  }

  // Parallel columns, all grown in lockstep (grow()).
  std::vector<AgentId> locked_by_;
  std::vector<NodeId> down_child_;
  std::vector<std::uint8_t> flooded_;
  std::deque<Queue> queues_;
  std::function<void(NodeId)> on_dirty_;
};

}  // namespace dyncon::agent

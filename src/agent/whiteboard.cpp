#include "agent/whiteboard.hpp"

namespace dyncon::agent {

const Whiteboard& WhiteboardManager::at(NodeId v) const {
  static const Whiteboard kEmpty;
  return v < boards_.size() ? boards_[v] : kEmpty;
}

bool WhiteboardManager::locked(NodeId v) const { return at(v).locked; }

void WhiteboardManager::lock(NodeId v, AgentId a, NodeId came_from) {
  Whiteboard& wb = at(v);
  DYNCON_INVARIANT(!wb.locked, "lock of a locked node");
  wb.locked = true;
  wb.locked_by = a;
  wb.down_child = came_from;
  mark_dirty(v);
}

std::optional<Whiteboard::Waiter> WhiteboardManager::unlock(NodeId v,
                                                            AgentId a) {
  Whiteboard& wb = at(v);
  DYNCON_INVARIANT(wb.locked && wb.locked_by == a,
                   "unlock by non-holder");
  wb.locked = false;
  wb.locked_by = kNoAgent;
  wb.down_child = kNoNode;
  if (wb.queue.empty()) {
    mark_dirty(v);
    return std::nullopt;
  }
  Whiteboard::Waiter next = wb.queue.front();
  wb.queue.pop_front();
  mark_dirty(v);
  return next;
}

void WhiteboardManager::release_for_removal(NodeId v, AgentId a) {
  Whiteboard& wb = at(v);
  DYNCON_INVARIANT(wb.locked && wb.locked_by == a,
                   "release by non-holder");
  wb.locked = false;
  wb.locked_by = kNoAgent;
  wb.down_child = kNoNode;
  mark_dirty(v);
}

void WhiteboardManager::enqueue(NodeId v, AgentId a, NodeId came_from) {
  Whiteboard& wb = at(v);
  DYNCON_INVARIANT(wb.locked, "enqueue at unlocked node");
  wb.queue.push_back(Whiteboard::Waiter{a, came_from});
  mark_dirty(v);
}

WhiteboardManager::EvictResult WhiteboardManager::evict_to_parent(
    NodeId v, NodeId parent) {
  EvictResult out;
  if (v >= boards_.size()) return out;
  Whiteboard& src = boards_[v];
  Whiteboard& dst = at(parent);  // deque growth keeps src valid
  DYNCON_INVARIANT(!src.locked, "evicting a locked node");
  out.moved = src.queue.size();
  for (auto& waiter : src.queue) dst.queue.push_back(waiter);
  // Keep the flood marker conservative: if either saw the wave, the
  // survivor did.
  dst.flooded = dst.flooded || src.flooded;
  src = Whiteboard{};  // the node is gone; drop its coordination state
  if (!dst.locked && !dst.queue.empty()) {
    out.resume = dst.queue.front();
    dst.queue.pop_front();
  }
  mark_dirty(v);
  mark_dirty(parent);
  return out;
}

}  // namespace dyncon::agent

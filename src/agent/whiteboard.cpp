#include "agent/whiteboard.hpp"

#include <utility>

namespace dyncon::agent {

namespace {
const WhiteboardManager::Queue kEmptyQueue;
}

const WhiteboardManager::Queue& WhiteboardManager::queue(NodeId v) const {
  return v < queues_.size() ? queues_[v] : kEmptyQueue;
}

void WhiteboardManager::lock(NodeId v, AgentId a, NodeId came_from) {
  grow(v);
  DYNCON_INVARIANT(locked_by_[v] == kNoAgent, "lock of a locked node");
  locked_by_[v] = a;
  down_child_[v] = came_from;
  mark_dirty(v);
}

std::optional<Waiter> WhiteboardManager::unlock(NodeId v, AgentId a) {
  DYNCON_INVARIANT(locked_by(v) == a && a != kNoAgent,
                   "unlock by non-holder");
  locked_by_[v] = kNoAgent;
  down_child_[v] = kNoNode;
  Queue& q = queues_[v];
  if (q.empty()) {
    mark_dirty(v);
    return std::nullopt;
  }
  Waiter next = q.front();
  q.pop_front();
  mark_dirty(v);
  return next;
}

void WhiteboardManager::release_for_removal(NodeId v, AgentId a) {
  DYNCON_INVARIANT(locked_by(v) == a && a != kNoAgent,
                   "release by non-holder");
  locked_by_[v] = kNoAgent;
  down_child_[v] = kNoNode;
  mark_dirty(v);
}

void WhiteboardManager::enqueue(NodeId v, AgentId a, NodeId came_from) {
  DYNCON_INVARIANT(locked(v), "enqueue at unlocked node");
  queues_[v].push_back(Waiter{a, came_from});
  mark_dirty(v);
}

WhiteboardManager::EvictResult WhiteboardManager::evict_to_parent(
    NodeId v, NodeId parent) {
  EvictResult out;
  if (v >= locked_by_.size()) return out;
  DYNCON_INVARIANT(locked_by_[v] == kNoAgent, "evicting a locked node");
  grow(parent);
  Queue& src = queues_[v];
  Queue& dst = queues_[parent];  // deque growth keeps src valid
  out.moved = src.size();
  for (const Waiter& w : src) dst.push_back(w);
  // Keep the flood marker conservative: if either saw the wave, the
  // survivor did.
  flooded_[parent] |= flooded_[v];
  // The node is gone; drop its coordination state.
  src.clear();
  locked_by_[v] = kNoAgent;
  down_child_[v] = kNoNode;
  flooded_[v] = 0;
  if (locked_by_[parent] == kNoAgent && !dst.empty()) {
    out.resume = dst.front();
    dst.pop_front();
  }
  mark_dirty(v);
  mark_dirty(parent);
  return out;
}

void WhiteboardManager::wipe(NodeId v) {
  if (v >= locked_by_.size()) return;
  locked_by_[v] = kNoAgent;
  down_child_[v] = kNoNode;
  flooded_[v] = 0;
  queues_[v].clear();
}

void WhiteboardManager::restore(NodeId v, AgentId locked_by, NodeId down_child,
                                bool flooded, Queue queue) {
  grow(v);
  locked_by_[v] = locked_by;
  down_child_[v] = down_child;
  flooded_[v] = flooded ? 1 : 0;
  queues_[v] = std::move(queue);
}

}  // namespace dyncon::agent

#include "agent/convergecast.hpp"

#include <utility>

#include "util/error.hpp"

namespace dyncon::agent {

Convergecast::Convergecast(sim::Network& net, tree::DynamicTree& tree)
    : net_(net), tree_(tree) {}

void Convergecast::run(std::uint64_t broadcast_value, Visit visit,
                       Combine combine, Done done) {
  DYNCON_REQUIRE(!running_, "convergecast runs may not overlap");
  DYNCON_REQUIRE(visit && combine && done, "null convergecast callbacks");
  running_ = true;
  visit_ = std::move(visit);
  combine_ = std::move(combine);
  done_ = std::move(done);
  state_.clear();
  arrived_down(tree_.root(), broadcast_value);
}

void Convergecast::count_nodes(Done done) {
  run(
      0, [](NodeId, std::uint64_t) -> std::uint64_t { return 1; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      std::move(done));
}

void Convergecast::down(NodeId v, std::uint64_t value) {
  ++messages_;
  net_.send(tree_.parent(v), v,
            sim::Message::control(sim::ControlTopic::kBroadcast, value),
            [this, v, value] { arrived_down(v, value); });
}

void Convergecast::arrived_down(NodeId v, std::uint64_t value) {
  DYNCON_INVARIANT(tree_.alive(v),
                   "topology changed under a convergecast run");
  NodeState& st = state_[v];
  st.acc = visit_(v, value);
  const auto& kids = tree_.children(v);
  st.pending = kids.size();
  if (st.pending == 0) {
    complete_node(v);
    return;
  }
  for (NodeId c : kids) down(c, value);
}

void Convergecast::complete_node(NodeId v) {
  if (v == tree_.root()) {
    running_ = false;
    const std::uint64_t result = state_[v].acc;
    // Allow `done_` to start the next run.
    Done done = std::move(done_);
    done_ = nullptr;
    done(result);
    return;
  }
  up(v, tree_.parent(v), state_[v].acc);
}

void Convergecast::up(NodeId child, NodeId parent, std::uint64_t value) {
  ++messages_;
  net_.send(child, parent,
            sim::Message::control(sim::ControlTopic::kUpcast, value),
            [this, parent, value] { arrived_up(parent, value); });
}

void Convergecast::arrived_up(NodeId parent, std::uint64_t value) {
  DYNCON_INVARIANT(tree_.alive(parent),
                   "topology changed under a convergecast run");
  NodeState& st = state_[parent];
  DYNCON_INVARIANT(st.pending > 0, "unexpected upcast message");
  st.acc = combine_(st.acc, value);
  if (--st.pending == 0) complete_node(parent);
}

}  // namespace dyncon::agent

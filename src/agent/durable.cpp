#include "agent/durable.hpp"

#include "obs/metrics.hpp"
#include "sim/network.hpp"
#include "util/error.hpp"

namespace dyncon::agent {

namespace {

constexpr std::uint32_t kSnapshotVersion = 1;

/// Node ids are gamma-coded shifted by one so the kNoNode sentinel (the
/// all-ones id) wraps to 0 — the same trick keeps every real id < 2^62.
template <typename Writer>
void put_node(Writer& w, NodeId v) {
  w.put_gamma(v + 1);
}

NodeId get_node(sim::BitReader& r) { return r.get_gamma() - 1; }

/// One body over both writers (BitWriter materializes, BitCounter only
/// sizes) — the PR-4 discipline that pins board_snapshot_bits() ==
/// encode_board().bits by construction.
template <typename Writer>
void write_board(Writer& w, const BoardSnapshot& b) {
  w.put_bits(kSnapshotVersion, 4);
  w.put_bit(b.locked);
  w.put_bit(b.flooded);
  if (b.locked) w.put_varint(b.locked_by);
  put_node(w, b.down_child);
  w.put_gamma(b.queue.size());
  for (const ParkedAgent& p : b.queue) {
    w.put_varint(p.agent);
    put_node(w, p.came_from);
    put_node(w, p.origin);
    w.put_gamma(p.distance);
    w.put_bits(p.phase, 3);
    w.put_bits(p.req_type, 2);
    put_node(w, p.req_subject);
  }
}

}  // namespace

const char* durability_name(Durability d) {
  switch (d) {
    case Durability::kVolatile:
      return "volatile";
    case Durability::kDurable:
      return "durable";
  }
  return "?";
}

sim::Encoded encode_board(const BoardSnapshot& b) {
  sim::BitWriter w(board_snapshot_bits(b));
  write_board(w, b);
  return w.finish();
}

std::uint64_t board_snapshot_bits(const BoardSnapshot& b) {
  sim::BitCounter c;
  write_board(c, b);
  return c.bit_count();
}

BoardSnapshot decode_board(const sim::Encoded& e) {
  sim::BitReader r(e);
  DYNCON_REQUIRE(r.get_bits(4) == kSnapshotVersion,
                 "unknown board snapshot version");
  BoardSnapshot b;
  b.locked = r.get_bit();
  b.flooded = r.get_bit();
  b.locked_by = b.locked ? r.get_varint() : kNoAgent;
  b.down_child = get_node(r);
  b.queue.resize(r.get_gamma());
  for (ParkedAgent& p : b.queue) {
    p.agent = r.get_varint();
    p.came_from = get_node(r);
    p.origin = get_node(r);
    p.distance = r.get_gamma();
    p.phase = static_cast<std::uint8_t>(r.get_bits(3));
    p.req_type = static_cast<std::uint8_t>(r.get_bits(2));
    p.req_subject = get_node(r);
  }
  DYNCON_REQUIRE(r.finished(), "trailing bits after board snapshot");
  return b;
}

std::uint64_t board_snapshot_budget_bits(const BoardSnapshot& b,
                                         std::uint64_t n) {
  const std::uint64_t node_ref = ceil_log2(n < 2 ? 2 : n) + 1;
  std::uint64_t bits = 16 + 2 * node_ref + sim::gamma_bits(b.queue.size()) +
                       (b.locked ? sim::varint_bits(b.locked_by) : 0);
  for (const ParkedAgent& p : b.queue) {
    bits += sim::varint_bits(p.agent) + 2 * parked_agent_model_bits(n);
  }
  return bits;
}

DurableStore::DurableStore(Provider provider)
    : provider_(std::move(provider)) {
  DYNCON_REQUIRE(static_cast<bool>(provider_), "DurableStore needs a provider");
}

void DurableStore::persist(NodeId v) {
  sim::Encoded e = encode_board(provider_(v));
  ++writes_;
  bits_written_ += e.bits;
  static thread_local obs::CounterHandle writes("recovery.snapshot_writes");
  writes.add();
  static thread_local obs::CounterHandle bits("recovery.snapshot_bits");
  bits.add(e.bits);
  if (net_ != nullptr) net_->charge(sim::Message::app_payload(e.bits), 1);
  if (v >= slots_.size()) {
    slots_.resize(v + 1);
    present_.resize(v + 1, false);
  }
  slots_[v] = std::move(e);
  present_[v] = true;
}

void DurableStore::erase(NodeId v) {
  if (v >= present_.size()) return;
  present_[v] = false;
  slots_[v] = sim::Encoded{};
}

bool DurableStore::has(NodeId v) const {
  return v < present_.size() && present_[v];
}

BoardSnapshot DurableStore::restore(NodeId v) const {
  DYNCON_REQUIRE(has(v), "restore of a node with no snapshot");
  return decode_board(slots_[v]);
}

}  // namespace dyncon::agent

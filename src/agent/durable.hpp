#pragma once

// Durable whiteboards: crash-surviving snapshots of per-node coordination
// state (ROADMAP item 3).
//
// A whiteboard is the only protocol state a node holds between agent
// visits, and Claim 4.8 already bounds its size to O(log N) bits per
// parked agent — so persisting it is cheap *by construction*, and this
// layer proves that: every snapshot is encoded with the PR-1 wire codec
// (gamma/varint bit streams), its measured size is metered (and optionally
// charged through the network as §2.2 application traffic), and the
// property tests assert encode→decode identity plus the size-vs-accounting
// bound.
//
// A BoardSnapshot extends the raw Whiteboard with the *agent-side* state of
// each parked waiter (origin, distance, phase, request), because a waiter
// reincarnated after a restart must resume "as if it had just entered the
// node" (§4.3) — which takes the agent's own counters, not just its id.
// Parked waiters are always pre-grant (kStart/kClimb, proven by the
// protocol: an agent only parks before acquiring its first lock at that
// node), so they never carry packages and the snapshot needs no Bag field
// beyond the phase tag.
//
// The DurableStore is a model of per-node stable storage co-located with
// the node: writes happen synchronously at mutation time (the journal is
// always current when the crash hits), survive the crash, and are read
// back on restart.  The simulator keeps one store per controller, indexed
// by node — the distribution is logical, matching how whiteboards
// themselves are stored.

#include <cstdint>
#include <functional>
#include <vector>

#include "agent/runtime.hpp"
#include "agent/whiteboard.hpp"
#include "sim/wire.hpp"
#include "util/ids.hpp"

namespace dyncon::sim {
class Network;
}  // namespace dyncon::sim

namespace dyncon::agent {

/// Whether a controller's whiteboards survive node crashes.
enum class Durability : std::uint8_t {
  kVolatile,  ///< a crash wipes the board; holder doomed, waiters killed
  kDurable,   ///< journaled boards restored on restart; waiters reincarnate
};

[[nodiscard]] const char* durability_name(Durability d);

/// One parked agent as persisted: the whiteboard's Waiter entry plus the
/// agent state needed to reincarnate it after a restart.
struct ParkedAgent {
  AgentId agent = kNoAgent;
  NodeId came_from = kNoNode;  ///< child it arrived from (kNoNode: born here)
  NodeId origin = kNoNode;     ///< request origin
  std::uint64_t distance = 0;  ///< hops to origin when it parked
  std::uint8_t phase = 0;      ///< protocol phase tag (< 8, 3 bits)
  std::uint8_t req_type = 0;   ///< RequestSpec::Type (< 4, 2 bits)
  NodeId req_subject = kNoNode;
  bool operator==(const ParkedAgent&) const = default;
};

/// A whole whiteboard as persisted.
struct BoardSnapshot {
  bool locked = false;
  AgentId locked_by = kNoAgent;
  NodeId down_child = kNoNode;
  bool flooded = false;
  std::vector<ParkedAgent> queue;
  bool operator==(const BoardSnapshot&) const = default;
};

/// Wire-codec round trip.  decode_board(encode_board(b)) == b for every
/// representable snapshot (property-tested); decode validates version and
/// exact consumption.
[[nodiscard]] sim::Encoded encode_board(const BoardSnapshot& b);
[[nodiscard]] BoardSnapshot decode_board(const sim::Encoded& e);
/// Exact encoded size in bits without materializing bytes (BitCounter).
[[nodiscard]] std::uint64_t board_snapshot_bits(const BoardSnapshot& b);

/// Modeled bits of one parked agent's persisted state when the tree has n
/// live nodes: four O(log n) fields (came_from, origin, distance, request
/// subject) plus the phase/type flags — the Claim 4.8 shape.
[[nodiscard]] inline std::uint64_t parked_agent_model_bits(std::uint64_t n) {
  return 4 * (ceil_log2(n < 2 ? 2 : n) + 1) + 8;
}

/// The accounting budget the encoded snapshot must stay within when every
/// node reference is < n and every distance <= n: a constant header plus,
/// per waiter, the id varint and twice the modeled bits (a gamma code costs
/// at most 2x the binary length + 1, and the model already carries +1/field
/// slack).  This is the bound test_crash_recovery asserts, tying the
/// serialized size to the Claim 4.8 memory accounting.
[[nodiscard]] std::uint64_t board_snapshot_budget_bits(const BoardSnapshot& b,
                                                       std::uint64_t n);

/// Per-controller stable storage: one encoded snapshot slot per node.
///
/// The store pulls state through a provider callback (the controller
/// assembles the BoardSnapshot from its whiteboard + agent table), so the
/// whiteboard layer stays ignorant of agent internals.  Every persist()
/// bumps recovery.snapshot_writes / recovery.snapshot_bits; when a network
/// is attached via set_charge_network, the measured size is also charged
/// as metered application traffic (§2.2) so persistence cost appears in
/// the message accounting — off by default, because charging changes
/// NetStats and existing fault-free runs must stay byte-identical.
class DurableStore {
 public:
  using Provider = std::function<BoardSnapshot(NodeId)>;

  explicit DurableStore(Provider provider);

  /// Meter persists through `net` as kApp traffic (nullptr detaches).
  void set_charge_network(sim::Network* net) { net_ = net; }

  /// Snapshot node `v` now (provider -> encode -> store).
  void persist(NodeId v);
  /// Forget a removed node's slot (its state was handed to the parent,
  /// whose own persist covers it).
  void erase(NodeId v);

  [[nodiscard]] bool has(NodeId v) const;
  /// Decode the stored snapshot of `v`; requires has(v).
  [[nodiscard]] BoardSnapshot restore(NodeId v) const;

  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t bits_written() const { return bits_written_; }

 private:
  Provider provider_;
  sim::Network* net_ = nullptr;
  std::vector<sim::Encoded> slots_;  // dense by NodeId; empty slot = absent
  std::vector<bool> present_;
  std::uint64_t writes_ = 0;
  std::uint64_t bits_written_ = 0;
};

}  // namespace dyncon::agent

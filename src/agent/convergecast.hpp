#pragma once

// Broadcast + convergecast (upcast) over the tree, as real messages.
//
// The paper's wrappers lean on "a simple broadcast and upcast operation"
// (Obs. 2.1, §3.3, App. A, §5.1) for counting nodes, disseminating N_i,
// collecting votes, and detecting termination.  This module implements it
// as actual network traffic: one message down each tree edge carrying the
// broadcast value, one message up each edge carrying the aggregated value
// — 2(n-1) messages of O(log n) bits per run.
//
// A run assumes the topology does not change while it is in flight; every
// caller in this library runs it at iteration boundaries, where the
// controller has quiesced (the terminating controller's contract).

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/network.hpp"
#include "tree/dynamic_tree.hpp"

namespace dyncon::agent {

class Convergecast {
 public:
  /// Called at every node on the way down: receives the value broadcast
  /// from the parent and returns this node's local contribution.
  using Visit = std::function<std::uint64_t(NodeId, std::uint64_t)>;
  /// Folds a child's aggregated value into the node's accumulator.
  using Combine =
      std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;
  /// Receives the root's final aggregate.
  using Done = std::function<void(std::uint64_t)>;

  Convergecast(sim::Network& net, tree::DynamicTree& tree);

  /// Start a run; `done` fires once the upcast reaches the root.  Multiple
  /// runs may not overlap.
  void run(std::uint64_t broadcast_value, Visit visit, Combine combine,
           Done done);

  /// Convenience: count the current nodes (visit = 1, combine = +).
  void count_nodes(Done done);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }

 private:
  struct NodeState {
    std::uint64_t acc = 0;
    std::size_t pending = 0;
  };

  void down(NodeId v, std::uint64_t value);
  void arrived_down(NodeId v, std::uint64_t value);
  void up(NodeId child, NodeId parent, std::uint64_t value);
  void arrived_up(NodeId parent, std::uint64_t value);
  void complete_node(NodeId v);

  sim::Network& net_;
  tree::DynamicTree& tree_;
  Visit visit_;
  Combine combine_;
  Done done_;
  std::unordered_map<NodeId, NodeState> state_;
  bool running_ = false;
  std::uint64_t messages_ = 0;
};

}  // namespace dyncon::agent

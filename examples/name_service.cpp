// Overlay name + directory service — §5.2 and §5.4 working together.
//
// A dynamic overlay where every node needs (a) a short unique name (log n +
// O(1) bits, maintained by the name-assignment protocol) and (b) the
// ability to answer "is X in Y's subtree?" purely from two labels (the
// dynamic ancestry labeling of Cor. 5.7).  Churn includes removals of
// internal nodes — the model the prior art (AAPS) cannot handle.
//
//   $ ./name_service

#include <cstdio>

#include "apps/ancestry_labeling.hpp"
#include "apps/name_assignment.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;

int main() {
  Rng rng(5);
  tree::DynamicTree overlay;
  workload::build(overlay, workload::Shape::kRandomAttach, 100, rng);

  // Two separate trees would be two separate protocols; both apps must see
  // every change, so run them on two mirrored topologies driven by the
  // same churn (each app owns its controller).
  Rng rng2(5);
  tree::DynamicTree mirror;
  workload::build(mirror, workload::Shape::kRandomAttach, 100, rng2);

  apps::NameAssignment names(overlay);
  apps::AncestryLabeling labels(mirror);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(13));

  std::printf("dynamic name + directory service, internal-churn workload\n");
  std::printf("%6s %7s %10s %8s %10s %9s\n", "step", "nodes", "max name",
              "name/n", "label bits", "relabels");

  for (int step = 1; step <= 1200; ++step) {
    // Drive both mirrored instances with the same proposal (ids align
    // because both trees evolve identically).
    const auto spec = churn.next(overlay);
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        names.request_add_leaf(spec.subject);
        labels.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        names.request_add_internal_above(spec.subject);
        labels.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        names.request_remove(spec.subject);
        labels.request_remove(spec.subject);
        break;
      default:
        break;
    }
    if (step % 150 == 0) {
      std::printf("%6d %7llu %10llu %8.2f %10llu %9llu\n", step,
                  static_cast<unsigned long long>(overlay.size()),
                  static_cast<unsigned long long>(names.max_id()),
                  static_cast<double>(names.max_id()) /
                      static_cast<double>(overlay.size()),
                  static_cast<unsigned long long>(labels.label_bits()),
                  static_cast<unsigned long long>(labels.relabels()));
    }
  }

  // Demonstrate a directory query answered from labels alone.
  const auto nodes = mirror.alive_nodes();
  const NodeId a = nodes[nodes.size() / 3];
  const NodeId b = nodes[2 * nodes.size() / 3];
  std::printf("\nquery: is node %llu an ancestor of node %llu?  labels say "
              "%s, tree agrees: %s\n",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b),
              labels.is_ancestor(a, b) ? "yes" : "no",
              labels.is_ancestor(a, b) == mirror.is_ancestor(a, b)
                  ? "yes"
                  : "NO (bug!)");
  std::printf("names stayed unique: %s; names <= 4n and labels ~log n bits "
              "throughout.\n",
              names.ids_unique() ? "yes" : "NO (bug!)");
  return 0;
}

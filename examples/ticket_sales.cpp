// Distributed ticket sales — the paper's canonical non-topological
// controller application (§2.2: "a controller may also control and count
// any type of non-topological event, e.g., sales of tickets by different
// nodes").
//
// A chain of box offices (a deep tree) sells a global stock of M tickets.
// Offices submit sales concurrently; the asynchronous distributed
// controller guarantees that at most M tickets are ever sold, that at
// least M - W are sold before anyone is turned away, and that hot offices
// get ticket packages cached nearby instead of going to headquarters for
// every sale.
//
//   $ ./ticket_sales

#include <cstdio>
#include <vector>

#include "core/distributed_controller.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;

int main() {
  // Deep chain of offices; the waste budget is generous (W > M), which
  // lets the controller pre-position multi-ticket packages near demand
  // (phi = 2 tickets per static package, psi small relative to depth).
  const std::uint64_t offices = 500, tickets = 2000, waste = 4000;

  Rng rng(99);
  sim::EventQueue queue;
  sim::Network net(queue,
                   sim::make_delay(sim::DelayKind::kHeavyTail, 123));
  tree::DynamicTree chain;
  workload::build(chain, workload::Shape::kCaterpillar, offices, rng);

  core::DistributedController controller(
      net, chain, core::Params(tickets, waste, 2 * offices));

  std::printf("%llu box offices, %llu tickets, waste budget %llu\n",
              static_cast<unsigned long long>(offices),
              static_cast<unsigned long long>(tickets),
              static_cast<unsigned long long>(waste));

  // Every office fires a burst of concurrent sale requests, five rounds
  // (2500 requests against 2000 tickets: the tail must be denied).
  const auto nodes = chain.alive_nodes();
  std::uint64_t sold = 0, denied = 0;
  std::uint64_t trivial_cost = 0;  // what per-sale HQ round trips would cost
  for (int round = 0; round < 5; ++round) {
    for (NodeId office : nodes) {
      trivial_cost += 2 * chain.depth(office);
      controller.submit_event(office, [&](const core::Result& r) {
        if (r.granted()) {
          ++sold;
        } else {
          ++denied;
        }
      });
    }
    queue.run();  // the asynchronous network does its thing
    std::printf("after round %d: sold=%llu denied=%llu (in-flight agents "
                "now %zu)\n",
                round + 1, static_cast<unsigned long long>(sold),
                static_cast<unsigned long long>(denied),
                controller.active_agents());
  }

  std::printf("\nfinal: sold %llu / %llu tickets (safety: never more than "
              "M), %llu denials\n",
              static_cast<unsigned long long>(sold),
              static_cast<unsigned long long>(tickets),
              static_cast<unsigned long long>(denied));
  std::printf("messages used: %llu (%.1f per sale) vs per-sale HQ round "
              "trips: %llu (%.1f per sale)\n",
              static_cast<unsigned long long>(controller.messages_used()),
              static_cast<double>(controller.messages_used()) /
                  static_cast<double>(sold),
              static_cast<unsigned long long>(trivial_cost),
              static_cast<double>(trivial_cost) /
                  static_cast<double>(sold + denied));
  return 0;
}

// Quickstart: the (M,W)-controller in five minutes.
//
// Builds a small dynamic tree, attaches a controller with M = 8 permits and
// waste W = 2, and walks through the controlled dynamic model: every event
// — including every topological change — asks the controller first.
//
//   $ ./quickstart

#include <cstdio>

#include "core/iterated_controller.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;

int main() {
  // A tree starts as a single root (id 0).  Grow a little starting shape.
  Rng rng(2024);
  tree::DynamicTree tree;
  workload::build(tree, workload::Shape::kRandomAttach, 6, rng);
  std::printf("initial tree: %llu nodes, root=%llu\n",
              static_cast<unsigned long long>(tree.size()),
              static_cast<unsigned long long>(tree.root()));

  // An (M, W)-controller: at most M grants ever; if anything is rejected,
  // at least M - W grants happen.  U bounds nodes-ever (Section 3.3 / the
  // AdaptiveController lifts this requirement).
  core::IteratedController controller(tree, /*M=*/8, /*W=*/2, /*U=*/64);

  // 1. Non-topological events (e.g. "sell one ticket at node u").
  for (NodeId u : tree.alive_nodes()) {
    const core::Result r = controller.request_event(u);
    std::printf("event at node %llu -> %s\n",
                static_cast<unsigned long long>(u),
                core::outcome_name(r.outcome));
  }

  // 2. Topological changes only happen when granted.
  const core::Result leaf = controller.request_add_leaf(tree.root());
  if (leaf.granted()) {
    std::printf("add-leaf granted: new node %llu (tree now %llu nodes)\n",
                static_cast<unsigned long long>(leaf.new_node),
                static_cast<unsigned long long>(tree.size()));
  } else {
    std::printf("add-leaf was %s — the change did NOT happen\n",
                core::outcome_name(leaf.outcome));
  }

  // 3. Exhaust the budget: the controller starts rejecting, but only after
  //    at least M - W = 6 grants (liveness).
  int granted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    const auto o = controller.request_event(tree.root()).outcome;
    granted += o == core::Outcome::kGranted;
    rejected += o == core::Outcome::kRejected;
  }
  std::printf("after the flood: %llu grants total (M=8, W=2 so >= 6 "
              "guaranteed), %d rejects delivered\n",
              static_cast<unsigned long long>(controller.permits_granted()),
              rejected);
  std::printf("total move complexity: %llu\n",
              static_cast<unsigned long long>(controller.cost()));
  return 0;
}

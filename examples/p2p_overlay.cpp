// P2P overlay scenario — the paper's §1.1 motivation.
//
// A peer-to-peer network dedicated to one topic: peers join when they get
// interested and leave gracefully when they lose interest (flash crowds
// included).  The overlay layer runs the size-estimation protocol
// (Theorem 5.1) so every peer always knows the network size within a
// factor of beta, paying only polylog messages per membership change.
//
//   $ ./p2p_overlay

#include <cstdio>

#include "apps/size_estimation.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;

int main() {
  const double beta = 2.0;
  Rng rng(7);
  tree::DynamicTree overlay;
  workload::build(overlay, workload::Shape::kRandomAttach, 64, rng);

  apps::SizeEstimation estimator(overlay, beta);
  workload::ChurnGenerator churn(workload::ChurnModel::kFlashCrowd, Rng(11));

  std::printf("P2P overlay with flash-crowd churn (beta = %.1f)\n\n", beta);
  std::printf("%8s  %8s  %10s  %8s  %12s\n", "step", "peers", "estimate",
              "ratio", "msgs/change");

  std::uint64_t changes = 0;
  for (int step = 1; step <= 3000; ++step) {
    const auto spec = churn.next(overlay);
    core::Result r;
    if (spec.type == core::RequestSpec::Type::kAddLeaf) {
      r = estimator.request_add_leaf(spec.subject);  // graceful join
    } else {
      r = estimator.request_remove(spec.subject);  // graceful leave
    }
    changes += r.granted();
    if (step % 300 == 0) {
      const double ratio = static_cast<double>(estimator.estimate()) /
                           static_cast<double>(overlay.size());
      std::printf("%8d  %8llu  %10llu  %8.2f  %12.1f\n", step,
                  static_cast<unsigned long long>(overlay.size()),
                  static_cast<unsigned long long>(estimator.estimate()),
                  ratio,
                  static_cast<double>(estimator.messages()) /
                      static_cast<double>(changes));
    }
  }

  std::printf("\nevery printed ratio stayed within [1/%.1f, %.1f] — each "
              "peer's local estimate is always a %.1f-approximation.\n",
              beta, beta, beta);
  std::printf("size-estimation iterations: %llu, total messages: %llu\n",
              static_cast<unsigned long long>(estimator.iterations()),
              static_cast<unsigned long long>(estimator.messages()));
  return 0;
}

// Overlay router — §5.4's motivation made concrete.
//
// A message overlay where every node can forward toward any destination
// using only its own routing table and the destination's label (no global
// state, no flooding), while the overlay itself churns.  Routes are exact
// (stretch 1); labels stay ~log n bits because the size-estimation
// protocol triggers relabeling when the network shrinks.
//
//   $ ./overlay_router

#include <cstdio>

#include "apps/distributed_tree_routing.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;

int main() {
  Rng rng(31);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 37));
  tree::DynamicTree overlay;
  workload::build(overlay, workload::Shape::kRandomAttach, 200, rng);

  apps::DistributedTreeRouting router(net, overlay);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(41));

  std::printf("%6s %7s %12s %11s %9s %14s\n", "phase", "nodes",
              "sample route", "hops=dist?", "label bits", "msgs/change");

  std::uint64_t changes = 0;
  for (int phase = 1; phase <= 6; ++phase) {
    // A burst of membership churn...
    for (int i = 0; i < 120; ++i) {
      const auto spec = churn.next(overlay);
      if (spec.type == core::RequestSpec::Type::kAddLeaf) {
        router.submit_add_leaf(spec.subject, [&](const core::Result& r) {
          changes += r.granted();
        });
      } else if (spec.type == core::RequestSpec::Type::kRemove) {
        router.submit_remove(spec.subject, [&](const core::Result& r) {
          changes += r.granted();
        });
      }
      if (i % 6 == 5) queue.run();
    }
    queue.run();

    // ...then route a random message across the overlay.
    const auto nodes = overlay.alive_nodes();
    const NodeId src = nodes[rng.index(nodes.size())];
    const NodeId dst = nodes[rng.index(nodes.size())];
    if (src == dst) continue;
    const auto hops = router.route(src, dst);
    // Ground-truth distance for the printout.
    std::uint64_t du = overlay.depth(src), dv = overlay.depth(dst);
    NodeId a = src, b = dst;
    while (du > dv) {
      a = overlay.parent(a);
      --du;
    }
    while (dv > du) {
      b = overlay.parent(b);
      --dv;
    }
    std::uint64_t dist = (overlay.depth(src) - du) +
                         (overlay.depth(dst) - dv);
    while (a != b) {
      a = overlay.parent(a);
      b = overlay.parent(b);
      dist += 2;
    }
    char route_str[32];
    std::snprintf(route_str, sizeof route_str, "%llu->%llu (%zu)",
                  static_cast<unsigned long long>(src),
                  static_cast<unsigned long long>(dst), hops.size());
    std::printf("%6d %7llu %12s %11s %9llu %14.1f\n", phase,
                static_cast<unsigned long long>(overlay.size()), route_str,
                hops.size() == dist ? "yes" : "NO (bug!)",
                static_cast<unsigned long long>(router.label_bits()),
                static_cast<double>(router.messages()) /
                    static_cast<double>(changes ? changes : 1));
  }

  std::printf("\nevery sampled route was shortest (stretch 1), decided hop "
              "by hop from labels alone; relabels so far: %llu\n",
              static_cast<unsigned long long>(router.relabels()));
  return 0;
}

// Distributed majority commitment — §1.3's motivating application.
//
// A coordinator must commit a transaction only if a strict majority of the
// *current* network agrees — but the network churns and nobody knows its
// exact size.  The two-phase commit protocol keeps a beta-approximation of
// the size via the paper's estimator and uses the provably-sound threshold
// yes >= floor(beta * n~ / 2) + 1.
//
//   $ ./majority_vote

#include <cstdio>

#include "apps/two_phase_commit.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;

int main() {
  Rng rng(2026);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 3));
  tree::DynamicTree network;
  workload::build(network, workload::Shape::kRandomAttach, 80, rng);

  apps::TwoPhaseCommit tpc(net, network, /*beta=*/1.3);
  Rng coin(17);
  auto cast_random_vote = [&](NodeId v, double p_yes) {
    tpc.set_vote(v, coin.chance(p_yes) ? apps::Vote::kYes
                                       : apps::Vote::kNo);
  };
  for (NodeId v : network.alive_nodes()) cast_random_vote(v, 0.75);

  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath, Rng(5));
  std::printf("%6s  %7s  %9s  %10s  %8s\n", "round", "nodes", "estimate",
              "threshold", "decision");

  for (int round = 1; round <= 8; ++round) {
    // Churn between rounds; joiners vote too.  As rounds progress the
    // electorate sours on the proposal.
    const double p_yes = 0.85 - 0.09 * round;
    for (int i = 0; i < 25; ++i) {
      const auto spec = churn.next(network);
      if (spec.type == core::RequestSpec::Type::kAddLeaf) {
        tpc.submit_add_leaf(spec.subject,
                            [&, p_yes](const core::Result& r) {
                              if (r.granted()) {
                                cast_random_vote(r.new_node, p_yes);
                              }
                            });
      } else if (spec.type == core::RequestSpec::Type::kRemove) {
        tpc.submit_remove(spec.subject, [](const core::Result&) {});
      }
    }
    queue.run();  // quiesce before voting
    // Some standing voters change their minds as well.
    for (NodeId v : network.alive_nodes()) {
      if (coin.chance(0.3)) cast_random_vote(v, p_yes);
    }

    apps::Decision decision = apps::Decision::kAbort;
    tpc.run_round([&](apps::Decision d) { decision = d; });
    queue.run();
    std::printf("%6d  %7llu  %9llu  %10llu  %8s\n", round,
                static_cast<unsigned long long>(network.size()),
                static_cast<unsigned long long>(tpc.size_estimate()),
                static_cast<unsigned long long>(tpc.commit_threshold()),
                decision == apps::Decision::kCommit ? "COMMIT" : "abort");
  }

  std::printf("\nsoundness: every COMMIT above was backed by a strict "
              "majority of the nodes alive at that moment (the threshold "
              "clears beta*n~/2 >= n/2 by the estimator's guarantee).\n");
  std::printf("total protocol messages: %llu\n",
              static_cast<unsigned long long>(tpc.messages()));
  return 0;
}

// Scenario runner — drive any controller with a recorded or generated
// request trace from the command line.
//
//   usage: scenario_runner [options]
//     --controller {iterated|adaptive|distributed|trivial|aaps}
//     --shape      {path|star|binary|random|caterpillar|broom}
//     --churn      {grow|birthdeath|internal|flashcrowd|shrink}
//     --n0 N       initial tree size            (default 64)
//     --steps N    number of requests           (default 500)
//     --m N        permit budget M              (default 2*steps)
//     --w N        waste budget W               (default m/2)
//     --seed N     RNG seed                     (default 1)
//     --script F   replay the script in file F instead of generating churn
//     --dump F     write the generated request trace to file F
//
// Examples:
//   scenario_runner --controller distributed --shape caterpillar \
//                   --churn internal --n0 128 --steps 1000
//   scenario_runner --dump trace.txt && scenario_runner --script trace.txt

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/adaptive_controller.hpp"
#include "core/aaps_controller.hpp"
#include "core/distributed_controller.hpp"
#include "core/iterated_controller.hpp"
#include "core/trivial_controller.hpp"
#include "tree/validate.hpp"
#include "workload/scenario.hpp"
#include "workload/script.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;

namespace {

struct Args {
  std::string controller = "iterated";
  std::string shape = "random";
  std::string churn = "birthdeath";
  std::uint64_t n0 = 64;
  std::uint64_t steps = 500;
  std::uint64_t m = 0;  // 0 = derive
  std::uint64_t w = 0;
  std::uint64_t seed = 1;
  std::string script_file;
  std::string dump_file;
};

workload::Shape parse_shape(const std::string& s) {
  for (auto sh : workload::all_shapes()) {
    if (s == workload::shape_name(sh)) return sh;
  }
  throw ContractError("unknown shape: " + s);
}

workload::ChurnModel parse_churn(const std::string& s) {
  for (auto m : workload::all_churn_models()) {
    if (s == workload::churn_name(m)) return m;
  }
  throw ContractError("unknown churn model: " + s);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) throw ContractError("missing value for " + key);
      return argv[i];
    };
    if (key == "--controller") {
      a.controller = next();
    } else if (key == "--shape") {
      a.shape = next();
    } else if (key == "--churn") {
      a.churn = next();
    } else if (key == "--n0") {
      a.n0 = std::stoull(next());
    } else if (key == "--steps") {
      a.steps = std::stoull(next());
    } else if (key == "--m") {
      a.m = std::stoull(next());
    } else if (key == "--w") {
      a.w = std::stoull(next());
    } else if (key == "--seed") {
      a.seed = std::stoull(next());
    } else if (key == "--script") {
      a.script_file = next();
    } else if (key == "--dump") {
      a.dump_file = next();
    } else if (key == "--help" || key == "-h") {
      std::printf("see the header comment of scenario_runner.cpp\n");
      std::exit(0);
    } else {
      throw ContractError("unknown option: " + key);
    }
  }
  if (a.m == 0) a.m = 2 * a.steps;
  if (a.w == 0) a.w = a.m / 2;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // Build (or load) the request trace against a scratch copy of the tree.
  workload::Script script;
  {
    Rng rng(args.seed);
    tree::DynamicTree scratch;
    workload::build(scratch, parse_shape(args.shape), args.n0, rng);
    if (!args.script_file.empty()) {
      std::ifstream in(args.script_file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", args.script_file.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      script = workload::Script::parse(buf.str());
    } else {
      workload::ChurnGenerator churn(parse_churn(args.churn),
                                     Rng(args.seed + 1));
      script = workload::Script::record(scratch, churn, args.steps);
    }
  }
  if (!args.dump_file.empty()) {
    std::ofstream out(args.dump_file);
    out << script.str();
    std::printf("wrote %zu requests to %s\n", script.size(),
                args.dump_file.c_str());
  }

  // Fresh tree, chosen controller, replay.
  Rng rng(args.seed);
  tree::DynamicTree tree;
  workload::build(tree, parse_shape(args.shape), args.n0, rng);
  const std::uint64_t U = 2 * (args.n0 + script.size());

  sim::EventQueue queue;  // used by the distributed variant only
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform,
                                          args.seed * 31 + 7));
  std::unique_ptr<core::DistributedController> dist;
  std::unique_ptr<core::IController> ctrl;
  if (args.controller == "iterated") {
    ctrl = std::make_unique<core::IteratedController>(tree, args.m, args.w,
                                                      U);
  } else if (args.controller == "adaptive") {
    ctrl = std::make_unique<core::AdaptiveController>(tree, args.m, args.w);
  } else if (args.controller == "trivial") {
    ctrl = std::make_unique<core::TrivialController>(tree, args.m);
  } else if (args.controller == "aaps") {
    ctrl = std::make_unique<core::AAPSController>(tree, args.m, args.w, U);
  } else if (args.controller == "distributed") {
    dist = std::make_unique<core::DistributedController>(
        net, tree, core::Params(args.m, std::max<std::uint64_t>(args.w, 1),
                                U));
    ctrl = std::make_unique<core::DistributedSyncFacade>(queue, *dist);
  } else {
    std::fprintf(stderr, "unknown controller: %s\n",
                 args.controller.c_str());
    return 1;
  }

  const workload::ReplayStats stats = workload::replay(script, *ctrl, tree);
  const auto valid = tree::validate(tree);

  std::printf("controller=%s shape=%s churn=%s n0=%llu steps=%zu M=%llu "
              "W=%llu seed=%llu\n",
              args.controller.c_str(), args.shape.c_str(),
              args.churn.c_str(),
              static_cast<unsigned long long>(args.n0), script.size(),
              static_cast<unsigned long long>(args.m),
              static_cast<unsigned long long>(args.w),
              static_cast<unsigned long long>(args.seed));
  std::printf("submitted=%llu granted=%llu rejected=%llu skipped=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.granted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.skipped));
  std::printf("final tree: %llu nodes (%llu ever), structure %s\n",
              static_cast<unsigned long long>(tree.size()),
              static_cast<unsigned long long>(tree.total_ever()),
              valid.ok() ? "valid" : valid.detail.c_str());
  std::printf("cost (moves / messages): %llu  (%.2f per granted request)\n",
              static_cast<unsigned long long>(ctrl->cost()),
              stats.granted
                  ? static_cast<double>(ctrl->cost()) /
                        static_cast<double>(stats.granted)
                  : 0.0);
  return valid.ok() ? 0 : 2;
}

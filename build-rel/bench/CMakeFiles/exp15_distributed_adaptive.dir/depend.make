# Empty dependencies file for exp15_distributed_adaptive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp15_distributed_adaptive.dir/exp15_distributed_adaptive.cpp.o"
  "CMakeFiles/exp15_distributed_adaptive.dir/exp15_distributed_adaptive.cpp.o.d"
  "exp15_distributed_adaptive"
  "exp15_distributed_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp15_distributed_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp2_distributed_scaling.
# This may be replaced when dependencies are built.

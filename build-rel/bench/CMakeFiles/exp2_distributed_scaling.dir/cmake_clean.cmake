file(REMOVE_RECURSE
  "CMakeFiles/exp2_distributed_scaling.dir/exp2_distributed_scaling.cpp.o"
  "CMakeFiles/exp2_distributed_scaling.dir/exp2_distributed_scaling.cpp.o.d"
  "exp2_distributed_scaling"
  "exp2_distributed_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_distributed_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

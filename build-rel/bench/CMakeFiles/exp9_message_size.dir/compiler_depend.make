# Empty compiler generated dependencies file for exp9_message_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp9_message_size.dir/exp9_message_size.cpp.o"
  "CMakeFiles/exp9_message_size.dir/exp9_message_size.cpp.o.d"
  "exp9_message_size"
  "exp9_message_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp9_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

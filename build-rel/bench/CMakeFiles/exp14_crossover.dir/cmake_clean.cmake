file(REMOVE_RECURSE
  "CMakeFiles/exp14_crossover.dir/exp14_crossover.cpp.o"
  "CMakeFiles/exp14_crossover.dir/exp14_crossover.cpp.o.d"
  "exp14_crossover"
  "exp14_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp14_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

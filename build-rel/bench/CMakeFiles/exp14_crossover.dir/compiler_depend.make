# Empty compiler generated dependencies file for exp14_crossover.
# This may be replaced when dependencies are built.

# Empty dependencies file for exp10_concurrency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp10_concurrency.dir/exp10_concurrency.cpp.o"
  "CMakeFiles/exp10_concurrency.dir/exp10_concurrency.cpp.o.d"
  "exp10_concurrency"
  "exp10_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exp8_heavy_child.dir/exp8_heavy_child.cpp.o"
  "CMakeFiles/exp8_heavy_child.dir/exp8_heavy_child.cpp.o.d"
  "exp8_heavy_child"
  "exp8_heavy_child.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp8_heavy_child.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp8_heavy_child.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for exp6_size_estimation.
# This may be replaced when dependencies are built.

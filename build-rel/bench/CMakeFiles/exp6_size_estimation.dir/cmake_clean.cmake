file(REMOVE_RECURSE
  "CMakeFiles/exp6_size_estimation.dir/exp6_size_estimation.cpp.o"
  "CMakeFiles/exp6_size_estimation.dir/exp6_size_estimation.cpp.o.d"
  "exp6_size_estimation"
  "exp6_size_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp6_size_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exp1_centralized_scaling.dir/exp1_centralized_scaling.cpp.o"
  "CMakeFiles/exp1_centralized_scaling.dir/exp1_centralized_scaling.cpp.o.d"
  "exp1_centralized_scaling"
  "exp1_centralized_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_centralized_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

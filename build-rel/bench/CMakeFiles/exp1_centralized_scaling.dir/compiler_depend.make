# Empty compiler generated dependencies file for exp1_centralized_scaling.
# This may be replaced when dependencies are built.

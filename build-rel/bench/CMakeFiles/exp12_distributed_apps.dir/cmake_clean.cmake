file(REMOVE_RECURSE
  "CMakeFiles/exp12_distributed_apps.dir/exp12_distributed_apps.cpp.o"
  "CMakeFiles/exp12_distributed_apps.dir/exp12_distributed_apps.cpp.o.d"
  "exp12_distributed_apps"
  "exp12_distributed_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_distributed_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp12_distributed_apps.
# This may be replaced when dependencies are built.

# Empty dependencies file for exp13_message_breakdown.
# This may be replaced when dependencies are built.

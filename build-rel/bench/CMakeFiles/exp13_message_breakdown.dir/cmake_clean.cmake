file(REMOVE_RECURSE
  "CMakeFiles/exp13_message_breakdown.dir/exp13_message_breakdown.cpp.o"
  "CMakeFiles/exp13_message_breakdown.dir/exp13_message_breakdown.cpp.o.d"
  "exp13_message_breakdown"
  "exp13_message_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp13_message_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

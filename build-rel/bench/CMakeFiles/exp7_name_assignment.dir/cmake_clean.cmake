file(REMOVE_RECURSE
  "CMakeFiles/exp7_name_assignment.dir/exp7_name_assignment.cpp.o"
  "CMakeFiles/exp7_name_assignment.dir/exp7_name_assignment.cpp.o.d"
  "exp7_name_assignment"
  "exp7_name_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp7_name_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

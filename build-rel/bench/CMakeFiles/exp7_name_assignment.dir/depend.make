# Empty dependencies file for exp7_name_assignment.
# This may be replaced when dependencies are built.

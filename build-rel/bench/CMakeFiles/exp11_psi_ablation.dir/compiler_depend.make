# Empty compiler generated dependencies file for exp11_psi_ablation.
# This may be replaced when dependencies are built.

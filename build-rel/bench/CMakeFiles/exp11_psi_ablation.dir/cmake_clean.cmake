file(REMOVE_RECURSE
  "CMakeFiles/exp11_psi_ablation.dir/exp11_psi_ablation.cpp.o"
  "CMakeFiles/exp11_psi_ablation.dir/exp11_psi_ablation.cpp.o.d"
  "exp11_psi_ablation"
  "exp11_psi_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_psi_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

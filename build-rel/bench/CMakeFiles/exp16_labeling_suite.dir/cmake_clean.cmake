file(REMOVE_RECURSE
  "CMakeFiles/exp16_labeling_suite.dir/exp16_labeling_suite.cpp.o"
  "CMakeFiles/exp16_labeling_suite.dir/exp16_labeling_suite.cpp.o.d"
  "exp16_labeling_suite"
  "exp16_labeling_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp16_labeling_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp16_labeling_suite.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp3_baseline_comparison.dir/exp3_baseline_comparison.cpp.o"
  "CMakeFiles/exp3_baseline_comparison.dir/exp3_baseline_comparison.cpp.o.d"
  "exp3_baseline_comparison"
  "exp3_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp3_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp3_baseline_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp5_adaptive_churn.dir/exp5_adaptive_churn.cpp.o"
  "CMakeFiles/exp5_adaptive_churn.dir/exp5_adaptive_churn.cpp.o.d"
  "exp5_adaptive_churn"
  "exp5_adaptive_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_adaptive_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

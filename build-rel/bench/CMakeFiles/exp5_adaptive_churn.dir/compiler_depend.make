# Empty compiler generated dependencies file for exp5_adaptive_churn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp4_waste_tradeoff.dir/exp4_waste_tradeoff.cpp.o"
  "CMakeFiles/exp4_waste_tradeoff.dir/exp4_waste_tradeoff.cpp.o.d"
  "exp4_waste_tradeoff"
  "exp4_waste_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp4_waste_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp4_waste_tradeoff.
# This may be replaced when dependencies are built.

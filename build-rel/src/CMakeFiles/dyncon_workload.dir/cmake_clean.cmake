file(REMOVE_RECURSE
  "CMakeFiles/dyncon_workload.dir/workload/arrival.cpp.o"
  "CMakeFiles/dyncon_workload.dir/workload/arrival.cpp.o.d"
  "CMakeFiles/dyncon_workload.dir/workload/churn.cpp.o"
  "CMakeFiles/dyncon_workload.dir/workload/churn.cpp.o.d"
  "CMakeFiles/dyncon_workload.dir/workload/scenario.cpp.o"
  "CMakeFiles/dyncon_workload.dir/workload/scenario.cpp.o.d"
  "CMakeFiles/dyncon_workload.dir/workload/script.cpp.o"
  "CMakeFiles/dyncon_workload.dir/workload/script.cpp.o.d"
  "CMakeFiles/dyncon_workload.dir/workload/shapes.cpp.o"
  "CMakeFiles/dyncon_workload.dir/workload/shapes.cpp.o.d"
  "libdyncon_workload.a"
  "libdyncon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

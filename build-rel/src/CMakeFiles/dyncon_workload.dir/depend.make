# Empty dependencies file for dyncon_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdyncon_workload.a"
)

# Empty compiler generated dependencies file for dyncon_sim.
# This may be replaced when dependencies are built.

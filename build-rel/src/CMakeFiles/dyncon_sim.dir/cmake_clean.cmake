file(REMOVE_RECURSE
  "CMakeFiles/dyncon_sim.dir/sim/delay.cpp.o"
  "CMakeFiles/dyncon_sim.dir/sim/delay.cpp.o.d"
  "CMakeFiles/dyncon_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/dyncon_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/dyncon_sim.dir/sim/network.cpp.o"
  "CMakeFiles/dyncon_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/dyncon_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/dyncon_sim.dir/sim/trace.cpp.o.d"
  "CMakeFiles/dyncon_sim.dir/sim/wire.cpp.o"
  "CMakeFiles/dyncon_sim.dir/sim/wire.cpp.o.d"
  "libdyncon_sim.a"
  "libdyncon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdyncon_sim.a"
)

file(REMOVE_RECURSE
  "libdyncon_core.a"
)

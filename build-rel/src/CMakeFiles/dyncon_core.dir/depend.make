# Empty dependencies file for dyncon_core.
# This may be replaced when dependencies are built.

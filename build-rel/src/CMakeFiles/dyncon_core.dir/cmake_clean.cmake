file(REMOVE_RECURSE
  "CMakeFiles/dyncon_core.dir/core/aaps_controller.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/aaps_controller.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/adaptive_controller.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/adaptive_controller.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/centralized_controller.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/centralized_controller.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/distributed_adaptive.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/distributed_adaptive.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/distributed_controller.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/distributed_controller.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/distributed_iterated.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/distributed_iterated.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/domain.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/domain.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/iterated_controller.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/iterated_controller.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/message_meter.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/message_meter.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/package.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/package.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/params.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/params.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/terminating_controller.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/terminating_controller.cpp.o.d"
  "CMakeFiles/dyncon_core.dir/core/trivial_controller.cpp.o"
  "CMakeFiles/dyncon_core.dir/core/trivial_controller.cpp.o.d"
  "libdyncon_core.a"
  "libdyncon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

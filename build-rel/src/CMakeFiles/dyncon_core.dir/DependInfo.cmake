
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aaps_controller.cpp" "src/CMakeFiles/dyncon_core.dir/core/aaps_controller.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/aaps_controller.cpp.o.d"
  "/root/repo/src/core/adaptive_controller.cpp" "src/CMakeFiles/dyncon_core.dir/core/adaptive_controller.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/adaptive_controller.cpp.o.d"
  "/root/repo/src/core/centralized_controller.cpp" "src/CMakeFiles/dyncon_core.dir/core/centralized_controller.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/centralized_controller.cpp.o.d"
  "/root/repo/src/core/distributed_adaptive.cpp" "src/CMakeFiles/dyncon_core.dir/core/distributed_adaptive.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/distributed_adaptive.cpp.o.d"
  "/root/repo/src/core/distributed_controller.cpp" "src/CMakeFiles/dyncon_core.dir/core/distributed_controller.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/distributed_controller.cpp.o.d"
  "/root/repo/src/core/distributed_iterated.cpp" "src/CMakeFiles/dyncon_core.dir/core/distributed_iterated.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/distributed_iterated.cpp.o.d"
  "/root/repo/src/core/domain.cpp" "src/CMakeFiles/dyncon_core.dir/core/domain.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/domain.cpp.o.d"
  "/root/repo/src/core/iterated_controller.cpp" "src/CMakeFiles/dyncon_core.dir/core/iterated_controller.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/iterated_controller.cpp.o.d"
  "/root/repo/src/core/message_meter.cpp" "src/CMakeFiles/dyncon_core.dir/core/message_meter.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/message_meter.cpp.o.d"
  "/root/repo/src/core/package.cpp" "src/CMakeFiles/dyncon_core.dir/core/package.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/package.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/dyncon_core.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/params.cpp.o.d"
  "/root/repo/src/core/terminating_controller.cpp" "src/CMakeFiles/dyncon_core.dir/core/terminating_controller.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/terminating_controller.cpp.o.d"
  "/root/repo/src/core/trivial_controller.cpp" "src/CMakeFiles/dyncon_core.dir/core/trivial_controller.cpp.o" "gcc" "src/CMakeFiles/dyncon_core.dir/core/trivial_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/dyncon_agent.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_sim.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_tree.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdyncon_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dyncon_util.dir/util/rng.cpp.o"
  "CMakeFiles/dyncon_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/dyncon_util.dir/util/stats.cpp.o"
  "CMakeFiles/dyncon_util.dir/util/stats.cpp.o.d"
  "libdyncon_util.a"
  "libdyncon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

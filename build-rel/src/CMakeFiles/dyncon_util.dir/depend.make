# Empty dependencies file for dyncon_util.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ancestry_labeling.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/ancestry_labeling.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/ancestry_labeling.cpp.o.d"
  "/root/repo/src/apps/distributed_ancestry_labeling.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_ancestry_labeling.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_ancestry_labeling.cpp.o.d"
  "/root/repo/src/apps/distributed_heavy_child.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_heavy_child.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_heavy_child.cpp.o.d"
  "/root/repo/src/apps/distributed_name_assignment.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_name_assignment.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_name_assignment.cpp.o.d"
  "/root/repo/src/apps/distributed_nca_labeling.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_nca_labeling.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_nca_labeling.cpp.o.d"
  "/root/repo/src/apps/distributed_size_estimation.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_size_estimation.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_size_estimation.cpp.o.d"
  "/root/repo/src/apps/distributed_tree_routing.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_tree_routing.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/distributed_tree_routing.cpp.o.d"
  "/root/repo/src/apps/heavy_child.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/heavy_child.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/heavy_child.cpp.o.d"
  "/root/repo/src/apps/majority_commit.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/majority_commit.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/majority_commit.cpp.o.d"
  "/root/repo/src/apps/name_assignment.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/name_assignment.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/name_assignment.cpp.o.d"
  "/root/repo/src/apps/nca_labeling.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/nca_labeling.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/nca_labeling.cpp.o.d"
  "/root/repo/src/apps/size_estimation.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/size_estimation.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/size_estimation.cpp.o.d"
  "/root/repo/src/apps/subtree_estimator.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/subtree_estimator.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/subtree_estimator.cpp.o.d"
  "/root/repo/src/apps/tree_routing.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/tree_routing.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/tree_routing.cpp.o.d"
  "/root/repo/src/apps/two_phase_commit.cpp" "src/CMakeFiles/dyncon_apps.dir/apps/two_phase_commit.cpp.o" "gcc" "src/CMakeFiles/dyncon_apps.dir/apps/two_phase_commit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/dyncon_core.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_agent.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_sim.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_tree.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

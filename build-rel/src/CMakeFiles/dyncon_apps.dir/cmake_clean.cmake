file(REMOVE_RECURSE
  "CMakeFiles/dyncon_apps.dir/apps/ancestry_labeling.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/ancestry_labeling.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_ancestry_labeling.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_ancestry_labeling.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_heavy_child.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_heavy_child.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_name_assignment.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_name_assignment.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_nca_labeling.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_nca_labeling.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_size_estimation.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_size_estimation.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_tree_routing.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/distributed_tree_routing.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/heavy_child.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/heavy_child.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/majority_commit.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/majority_commit.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/name_assignment.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/name_assignment.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/nca_labeling.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/nca_labeling.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/size_estimation.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/size_estimation.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/subtree_estimator.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/subtree_estimator.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/tree_routing.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/tree_routing.cpp.o.d"
  "CMakeFiles/dyncon_apps.dir/apps/two_phase_commit.cpp.o"
  "CMakeFiles/dyncon_apps.dir/apps/two_phase_commit.cpp.o.d"
  "libdyncon_apps.a"
  "libdyncon_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncon_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

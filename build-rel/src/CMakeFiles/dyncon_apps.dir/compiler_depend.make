# Empty compiler generated dependencies file for dyncon_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdyncon_apps.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/dynamic_tree.cpp" "src/CMakeFiles/dyncon_tree.dir/tree/dynamic_tree.cpp.o" "gcc" "src/CMakeFiles/dyncon_tree.dir/tree/dynamic_tree.cpp.o.d"
  "/root/repo/src/tree/ports.cpp" "src/CMakeFiles/dyncon_tree.dir/tree/ports.cpp.o" "gcc" "src/CMakeFiles/dyncon_tree.dir/tree/ports.cpp.o.d"
  "/root/repo/src/tree/snapshot.cpp" "src/CMakeFiles/dyncon_tree.dir/tree/snapshot.cpp.o" "gcc" "src/CMakeFiles/dyncon_tree.dir/tree/snapshot.cpp.o.d"
  "/root/repo/src/tree/validate.cpp" "src/CMakeFiles/dyncon_tree.dir/tree/validate.cpp.o" "gcc" "src/CMakeFiles/dyncon_tree.dir/tree/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/dyncon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdyncon_tree.a"
)

# Empty compiler generated dependencies file for dyncon_tree.
# This may be replaced when dependencies are built.

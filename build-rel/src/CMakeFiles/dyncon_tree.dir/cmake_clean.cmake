file(REMOVE_RECURSE
  "CMakeFiles/dyncon_tree.dir/tree/dynamic_tree.cpp.o"
  "CMakeFiles/dyncon_tree.dir/tree/dynamic_tree.cpp.o.d"
  "CMakeFiles/dyncon_tree.dir/tree/ports.cpp.o"
  "CMakeFiles/dyncon_tree.dir/tree/ports.cpp.o.d"
  "CMakeFiles/dyncon_tree.dir/tree/snapshot.cpp.o"
  "CMakeFiles/dyncon_tree.dir/tree/snapshot.cpp.o.d"
  "CMakeFiles/dyncon_tree.dir/tree/validate.cpp.o"
  "CMakeFiles/dyncon_tree.dir/tree/validate.cpp.o.d"
  "libdyncon_tree.a"
  "libdyncon_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncon_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

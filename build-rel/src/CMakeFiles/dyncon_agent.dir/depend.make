# Empty dependencies file for dyncon_agent.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdyncon_agent.a"
)

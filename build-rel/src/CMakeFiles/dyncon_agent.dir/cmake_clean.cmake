file(REMOVE_RECURSE
  "CMakeFiles/dyncon_agent.dir/agent/convergecast.cpp.o"
  "CMakeFiles/dyncon_agent.dir/agent/convergecast.cpp.o.d"
  "CMakeFiles/dyncon_agent.dir/agent/runtime.cpp.o"
  "CMakeFiles/dyncon_agent.dir/agent/runtime.cpp.o.d"
  "CMakeFiles/dyncon_agent.dir/agent/taxi.cpp.o"
  "CMakeFiles/dyncon_agent.dir/agent/taxi.cpp.o.d"
  "CMakeFiles/dyncon_agent.dir/agent/whiteboard.cpp.o"
  "CMakeFiles/dyncon_agent.dir/agent/whiteboard.cpp.o.d"
  "libdyncon_agent.a"
  "libdyncon_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncon_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/convergecast.cpp" "src/CMakeFiles/dyncon_agent.dir/agent/convergecast.cpp.o" "gcc" "src/CMakeFiles/dyncon_agent.dir/agent/convergecast.cpp.o.d"
  "/root/repo/src/agent/runtime.cpp" "src/CMakeFiles/dyncon_agent.dir/agent/runtime.cpp.o" "gcc" "src/CMakeFiles/dyncon_agent.dir/agent/runtime.cpp.o.d"
  "/root/repo/src/agent/taxi.cpp" "src/CMakeFiles/dyncon_agent.dir/agent/taxi.cpp.o" "gcc" "src/CMakeFiles/dyncon_agent.dir/agent/taxi.cpp.o.d"
  "/root/repo/src/agent/whiteboard.cpp" "src/CMakeFiles/dyncon_agent.dir/agent/whiteboard.cpp.o" "gcc" "src/CMakeFiles/dyncon_agent.dir/agent/whiteboard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/dyncon_sim.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_tree.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/dyncon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

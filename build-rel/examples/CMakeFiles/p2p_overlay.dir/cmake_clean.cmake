file(REMOVE_RECURSE
  "CMakeFiles/p2p_overlay.dir/p2p_overlay.cpp.o"
  "CMakeFiles/p2p_overlay.dir/p2p_overlay.cpp.o.d"
  "p2p_overlay"
  "p2p_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

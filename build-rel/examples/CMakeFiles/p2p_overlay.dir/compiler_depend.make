# Empty compiler generated dependencies file for p2p_overlay.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ticket_sales.dir/ticket_sales.cpp.o"
  "CMakeFiles/ticket_sales.dir/ticket_sales.cpp.o.d"
  "ticket_sales"
  "ticket_sales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_sales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

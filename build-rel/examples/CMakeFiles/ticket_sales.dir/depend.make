# Empty dependencies file for ticket_sales.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/overlay_router.dir/overlay_router.cpp.o"
  "CMakeFiles/overlay_router.dir/overlay_router.cpp.o.d"
  "overlay_router"
  "overlay_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

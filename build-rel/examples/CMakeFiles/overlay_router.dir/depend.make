# Empty dependencies file for overlay_router.
# This may be replaced when dependencies are built.

# Empty dependencies file for majority_vote.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/majority_vote.dir/majority_vote.cpp.o"
  "CMakeFiles/majority_vote.dir/majority_vote.cpp.o.d"
  "majority_vote"
  "majority_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/majority_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/name_service.dir/name_service.cpp.o"
  "CMakeFiles/name_service.dir/name_service.cpp.o.d"
  "name_service"
  "name_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

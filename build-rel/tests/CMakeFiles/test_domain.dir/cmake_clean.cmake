file(REMOVE_RECURSE
  "CMakeFiles/test_domain.dir/test_domain.cpp.o"
  "CMakeFiles/test_domain.dir/test_domain.cpp.o.d"
  "test_domain"
  "test_domain.pdb"
  "test_domain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_property_centralized.dir/test_property_centralized.cpp.o"
  "CMakeFiles/test_property_centralized.dir/test_property_centralized.cpp.o.d"
  "test_property_centralized"
  "test_property_centralized.pdb"
  "test_property_centralized[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

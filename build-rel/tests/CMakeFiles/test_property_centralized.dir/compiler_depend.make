# Empty compiler generated dependencies file for test_property_centralized.
# This may be replaced when dependencies are built.

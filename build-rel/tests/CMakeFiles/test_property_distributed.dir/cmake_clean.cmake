file(REMOVE_RECURSE
  "CMakeFiles/test_property_distributed.dir/test_property_distributed.cpp.o"
  "CMakeFiles/test_property_distributed.dir/test_property_distributed.cpp.o.d"
  "test_property_distributed"
  "test_property_distributed.pdb"
  "test_property_distributed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_convergecast.
# This may be replaced when dependencies are built.

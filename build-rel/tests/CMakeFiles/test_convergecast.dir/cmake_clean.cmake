file(REMOVE_RECURSE
  "CMakeFiles/test_convergecast.dir/test_convergecast.cpp.o"
  "CMakeFiles/test_convergecast.dir/test_convergecast.cpp.o.d"
  "test_convergecast"
  "test_convergecast.pdb"
  "test_convergecast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convergecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_tree_routing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_tree_routing.dir/test_tree_routing.cpp.o"
  "CMakeFiles/test_tree_routing.dir/test_tree_routing.cpp.o.d"
  "test_tree_routing"
  "test_tree_routing.pdb"
  "test_tree_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_routing.dir/test_distributed_routing.cpp.o"
  "CMakeFiles/test_distributed_routing.dir/test_distributed_routing.cpp.o.d"
  "test_distributed_routing"
  "test_distributed_routing.pdb"
  "test_distributed_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_distributed_routing.
# This may be replaced when dependencies are built.

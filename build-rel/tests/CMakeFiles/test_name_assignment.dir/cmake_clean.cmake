file(REMOVE_RECURSE
  "CMakeFiles/test_name_assignment.dir/test_name_assignment.cpp.o"
  "CMakeFiles/test_name_assignment.dir/test_name_assignment.cpp.o.d"
  "test_name_assignment"
  "test_name_assignment.pdb"
  "test_name_assignment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_name_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_name_assignment.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_subtree_heavy.
# This may be replaced when dependencies are built.

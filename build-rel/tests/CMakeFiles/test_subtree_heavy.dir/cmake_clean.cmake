file(REMOVE_RECURSE
  "CMakeFiles/test_subtree_heavy.dir/test_subtree_heavy.cpp.o"
  "CMakeFiles/test_subtree_heavy.dir/test_subtree_heavy.cpp.o.d"
  "test_subtree_heavy"
  "test_subtree_heavy.pdb"
  "test_subtree_heavy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subtree_heavy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_script.dir/test_script.cpp.o"
  "CMakeFiles/test_script.dir/test_script.cpp.o.d"
  "test_script"
  "test_script.pdb"
  "test_script[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_property_adaptive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_property_adaptive.dir/test_property_adaptive.cpp.o"
  "CMakeFiles/test_property_adaptive.dir/test_property_adaptive.cpp.o.d"
  "test_property_adaptive"
  "test_property_adaptive.pdb"
  "test_property_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_arrivals.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_arrivals.dir/test_arrivals.cpp.o"
  "CMakeFiles/test_arrivals.dir/test_arrivals.cpp.o.d"
  "test_arrivals"
  "test_arrivals.pdb"
  "test_arrivals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

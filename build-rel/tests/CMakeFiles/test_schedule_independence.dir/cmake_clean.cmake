file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_independence.dir/test_schedule_independence.cpp.o"
  "CMakeFiles/test_schedule_independence.dir/test_schedule_independence.cpp.o.d"
  "test_schedule_independence"
  "test_schedule_independence.pdb"
  "test_schedule_independence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_schedule_independence.
# This may be replaced when dependencies are built.

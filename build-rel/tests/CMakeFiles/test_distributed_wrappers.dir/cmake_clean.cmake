file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_wrappers.dir/test_distributed_wrappers.cpp.o"
  "CMakeFiles/test_distributed_wrappers.dir/test_distributed_wrappers.cpp.o.d"
  "test_distributed_wrappers"
  "test_distributed_wrappers.pdb"
  "test_distributed_wrappers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_wrappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

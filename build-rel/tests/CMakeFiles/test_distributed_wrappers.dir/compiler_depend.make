# Empty compiler generated dependencies file for test_distributed_wrappers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_races.dir/test_distributed_races.cpp.o"
  "CMakeFiles/test_distributed_races.dir/test_distributed_races.cpp.o.d"
  "test_distributed_races"
  "test_distributed_races.pdb"
  "test_distributed_races[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

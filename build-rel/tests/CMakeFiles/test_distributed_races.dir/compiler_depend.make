# Empty compiler generated dependencies file for test_distributed_races.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_fixtures.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_fixtures.dir/test_fixtures.cpp.o"
  "CMakeFiles/test_fixtures.dir/test_fixtures.cpp.o.d"
  "test_fixtures"
  "test_fixtures.pdb"
  "test_fixtures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixtures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_heavy_soak.dir/test_heavy_soak.cpp.o"
  "CMakeFiles/test_heavy_soak.dir/test_heavy_soak.cpp.o.d"
  "test_heavy_soak"
  "test_heavy_soak.pdb"
  "test_heavy_soak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heavy_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_iterated.dir/test_iterated.cpp.o"
  "CMakeFiles/test_iterated.dir/test_iterated.cpp.o.d"
  "test_iterated"
  "test_iterated.pdb"
  "test_iterated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iterated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

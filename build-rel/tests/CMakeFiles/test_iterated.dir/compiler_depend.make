# Empty compiler generated dependencies file for test_iterated.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_distributed_nca.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_nca.dir/test_distributed_nca.cpp.o"
  "CMakeFiles/test_distributed_nca.dir/test_distributed_nca.cpp.o.d"
  "test_distributed_nca"
  "test_distributed_nca.pdb"
  "test_distributed_nca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_nca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

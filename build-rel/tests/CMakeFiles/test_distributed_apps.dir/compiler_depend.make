# Empty compiler generated dependencies file for test_distributed_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_apps.dir/test_distributed_apps.cpp.o"
  "CMakeFiles/test_distributed_apps.dir/test_distributed_apps.cpp.o.d"
  "test_distributed_apps"
  "test_distributed_apps.pdb"
  "test_distributed_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_package.dir/test_package.cpp.o"
  "CMakeFiles/test_package.dir/test_package.cpp.o.d"
  "test_package"
  "test_package.pdb"
  "test_package[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_package.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

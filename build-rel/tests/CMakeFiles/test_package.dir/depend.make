# Empty dependencies file for test_package.
# This may be replaced when dependencies are built.

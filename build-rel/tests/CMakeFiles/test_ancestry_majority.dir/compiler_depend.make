# Empty compiler generated dependencies file for test_ancestry_majority.
# This may be replaced when dependencies are built.

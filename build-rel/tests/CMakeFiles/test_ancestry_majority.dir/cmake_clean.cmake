file(REMOVE_RECURSE
  "CMakeFiles/test_ancestry_majority.dir/test_ancestry_majority.cpp.o"
  "CMakeFiles/test_ancestry_majority.dir/test_ancestry_majority.cpp.o.d"
  "test_ancestry_majority"
  "test_ancestry_majority.pdb"
  "test_ancestry_majority[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ancestry_majority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

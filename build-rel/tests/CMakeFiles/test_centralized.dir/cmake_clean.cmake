file(REMOVE_RECURSE
  "CMakeFiles/test_centralized.dir/test_centralized.cpp.o"
  "CMakeFiles/test_centralized.dir/test_centralized.cpp.o.d"
  "test_centralized"
  "test_centralized.pdb"
  "test_centralized[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_centralized.
# This may be replaced when dependencies are built.

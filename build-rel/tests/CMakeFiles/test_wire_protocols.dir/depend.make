# Empty dependencies file for test_wire_protocols.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_wire_protocols.dir/test_wire_protocols.cpp.o"
  "CMakeFiles/test_wire_protocols.dir/test_wire_protocols.cpp.o.d"
  "test_wire_protocols"
  "test_wire_protocols.pdb"
  "test_wire_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_complexity_bounds.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_complexity_bounds.dir/test_complexity_bounds.cpp.o"
  "CMakeFiles/test_complexity_bounds.dir/test_complexity_bounds.cpp.o.d"
  "test_complexity_bounds"
  "test_complexity_bounds.pdb"
  "test_complexity_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_complexity_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

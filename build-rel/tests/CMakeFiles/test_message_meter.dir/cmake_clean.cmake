file(REMOVE_RECURSE
  "CMakeFiles/test_message_meter.dir/test_message_meter.cpp.o"
  "CMakeFiles/test_message_meter.dir/test_message_meter.cpp.o.d"
  "test_message_meter"
  "test_message_meter.pdb"
  "test_message_meter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_message_meter.
# This may be replaced when dependencies are built.

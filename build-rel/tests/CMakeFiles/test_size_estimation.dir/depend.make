# Empty dependencies file for test_size_estimation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_size_estimation.dir/test_size_estimation.cpp.o"
  "CMakeFiles/test_size_estimation.dir/test_size_estimation.cpp.o.d"
  "test_size_estimation"
  "test_size_estimation.pdb"
  "test_size_estimation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_size_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

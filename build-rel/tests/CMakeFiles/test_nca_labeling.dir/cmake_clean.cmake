file(REMOVE_RECURSE
  "CMakeFiles/test_nca_labeling.dir/test_nca_labeling.cpp.o"
  "CMakeFiles/test_nca_labeling.dir/test_nca_labeling.cpp.o.d"
  "test_nca_labeling"
  "test_nca_labeling.pdb"
  "test_nca_labeling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nca_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

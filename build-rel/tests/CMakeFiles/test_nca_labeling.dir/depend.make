# Empty dependencies file for test_nca_labeling.
# This may be replaced when dependencies are built.

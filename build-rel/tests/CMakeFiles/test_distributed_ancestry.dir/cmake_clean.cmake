file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_ancestry.dir/test_distributed_ancestry.cpp.o"
  "CMakeFiles/test_distributed_ancestry.dir/test_distributed_ancestry.cpp.o.d"
  "test_distributed_ancestry"
  "test_distributed_ancestry.pdb"
  "test_distributed_ancestry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_ancestry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

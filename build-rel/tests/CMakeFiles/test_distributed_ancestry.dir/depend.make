# Empty dependencies file for test_distributed_ancestry.
# This may be replaced when dependencies are built.

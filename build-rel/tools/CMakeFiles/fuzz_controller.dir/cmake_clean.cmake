file(REMOVE_RECURSE
  "CMakeFiles/fuzz_controller.dir/fuzz_controller.cpp.o"
  "CMakeFiles/fuzz_controller.dir/fuzz_controller.cpp.o.d"
  "fuzz_controller"
  "fuzz_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fuzz_controller.
# This may be replaced when dependencies are built.

// EXP15 — The unknown-U controller, fully distributed (Theorem 4.9 /
// Appendix A): message complexity per change under growth, for both
// rotation policies, with the parallel counting controller's overhead
// broken out against the main controller's traffic.
//
// The (policy, churn) grid runs as a parallel sweep of independent seeded
// simulations; tables print afterwards in point order.

#include <cmath>

#include "bench_util.hpp"
#include "core/distributed_adaptive.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct Row {
  std::uint64_t msgs = 0;
  std::uint64_t granted = 0;
  std::uint64_t iters = 0;
  std::uint64_t n_final = 0;
};

Row run(DistributedAdaptive::Policy policy, workload::ChurnModel model,
        std::uint64_t n0, std::uint64_t steps, std::uint64_t seed) {
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform,
                                          seed + 2));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  DistributedAdaptive::Options opts;
  opts.policy = policy;
  opts.track_domains = false;
  DistributedAdaptive ctrl(net, t, /*M=*/4 * steps, /*W=*/8, opts);
  workload::ChurnGenerator churn(model, Rng(seed + 8));
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < steps && t.size() >= 4; ++i) {
    ctrl.submit(churn.next(t), [&](const Result& r) {
      granted += r.granted();
    });
    if (i % 6 == 5) queue.run();
  }
  queue.run();
  bench::Run::note_net(net.stats());
  return {ctrl.messages_used(), granted, ctrl.iterations(), t.size()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run report_run("exp15", argc, argv);
  const std::uint64_t seed = report_run.base_seed(89);
  banner("EXP15: distributed unknown-U controller (Thm 4.9 / App. A)");

  const std::vector<DistributedAdaptive::Policy> policies = {
      DistributedAdaptive::Policy::kChangeCount,
      DistributedAdaptive::Policy::kSizeDoubling};
  const std::vector<workload::ChurnModel> models = {
      workload::ChurnModel::kGrowOnly, workload::ChurnModel::kBirthDeath,
      workload::ChurnModel::kInternalChurn,
      workload::ChurnModel::kFlashCrowd};
  const std::uint64_t n0 = 128, steps = 1024;

  std::vector<Row> points(policies.size() * models.size());
  parallel_sweep(report_run, points.size(), [&](std::size_t i) {
    points[i] = run(policies[i / models.size()], models[i % models.size()],
                    n0, steps, seed);
  });

  for (std::size_t p = 0; p < policies.size(); ++p) {
    subhead(policies[p] == DistributedAdaptive::Policy::kChangeCount
                ? "policy: part 1 (U_i = 2 N_i, counter-triggered rotation)"
                : "policy: part 2 (U_i = 2 max N)");
    Table tab({"churn", "n0", "steps", "n_final", "iters", "messages",
               "msgs/change", "/log^2 n"});
    for (std::size_t m = 0; m < models.size(); ++m) {
      const Row& r = points[p * models.size() + m];
      const double per = static_cast<double>(r.msgs) /
                         static_cast<double>(std::max<std::uint64_t>(
                             r.granted, 1));
      const double lg = std::log2(static_cast<double>(
          std::max<std::uint64_t>(r.n_final, 4)));
      tab.row({workload::churn_name(models[m]), num(n0), num(steps),
               num(r.n_final), num(r.iters), num(r.msgs), fp(per, 1),
               fp(per / (lg * lg), 3)});
    }
    tab.print();
  }
  std::printf("\nshape check: the asynchronous unknown-U controller keeps "
              "amortized messages per change at a small multiple of "
              "log^2 n across churn models and policies — Thm 4.9's bound "
              "with the App. A counting sidecar included.\n");
  return 0;
}

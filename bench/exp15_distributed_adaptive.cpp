// EXP15 — The unknown-U controller, fully distributed (Theorem 4.9 /
// Appendix A): message complexity per change under growth, for both
// rotation policies, with the parallel counting controller's overhead
// broken out against the main controller's traffic.

#include <cmath>

#include "bench_util.hpp"
#include "core/distributed_adaptive.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct Row {
  std::uint64_t msgs;
  std::uint64_t granted;
  std::uint64_t iters;
  std::uint64_t n_final;
};

Row run(DistributedAdaptive::Policy policy, workload::ChurnModel model,
        std::uint64_t n0, std::uint64_t steps) {
  Rng rng(89);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 91));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  DistributedAdaptive::Options opts;
  opts.policy = policy;
  opts.track_domains = false;
  DistributedAdaptive ctrl(net, t, /*M=*/4 * steps, /*W=*/8, opts);
  workload::ChurnGenerator churn(model, Rng(97));
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < steps && t.size() >= 4; ++i) {
    ctrl.submit(churn.next(t), [&](const Result& r) {
      granted += r.granted();
    });
    if (i % 6 == 5) queue.run();
  }
  queue.run();
  bench::Run::note_net(net.stats());
  return {ctrl.messages_used(), granted, ctrl.iterations(), t.size()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run report_run("exp15", argc, argv);
  banner("EXP15: distributed unknown-U controller (Thm 4.9 / App. A)");

  for (auto policy : {DistributedAdaptive::Policy::kChangeCount,
                      DistributedAdaptive::Policy::kSizeDoubling}) {
    subhead(policy == DistributedAdaptive::Policy::kChangeCount
                ? "policy: part 1 (U_i = 2 N_i, counter-triggered rotation)"
                : "policy: part 2 (U_i = 2 max N)");
    Table tab({"churn", "n0", "steps", "n_final", "iters", "messages",
               "msgs/change", "/log^2 n"});
    for (auto model :
         {workload::ChurnModel::kGrowOnly, workload::ChurnModel::kBirthDeath,
          workload::ChurnModel::kInternalChurn,
          workload::ChurnModel::kFlashCrowd}) {
      const std::uint64_t n0 = 128, steps = 1024;
      const Row r = run(policy, model, n0, steps);
      const double per = static_cast<double>(r.msgs) /
                         static_cast<double>(std::max<std::uint64_t>(
                             r.granted, 1));
      const double lg = std::log2(static_cast<double>(
          std::max<std::uint64_t>(r.n_final, 4)));
      tab.row({workload::churn_name(model), num(n0), num(steps),
               num(r.n_final), num(r.iters), num(r.msgs), fp(per, 1),
               fp(per / (lg * lg), 3)});
    }
    tab.print();
  }
  std::printf("\nshape check: the asynchronous unknown-U controller keeps "
              "amortized messages per change at a small multiple of "
              "log^2 n across churn models and policies — Thm 4.9's bound "
              "with the App. A counting sidecar included.\n");
  return 0;
}

// EXP8 — Heavy-child decomposition maintenance (Theorem 5.4): at all times
// every node has O(log n) light ancestors; maintaining the pointers at most
// doubles the subtree-estimator's message count.
//
// Sweep churn models and sizes; report the maximum light-ancestor count
// against log2(n) and the messaging overhead factor.

#include <cmath>

#include "apps/heavy_child.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

int main(int argc, char** argv) {
  bench::Run run("exp8", argc, argv);
  banner("EXP8: heavy-child decomposition (Thm 5.4)");

  Table tab({"churn", "n0", "n_final", "max light anc", "log2(n)",
             "ratio", "msgs", "overhead vs estimator"});
  for (auto model :
       {workload::ChurnModel::kGrowOnly, workload::ChurnModel::kBirthDeath,
        workload::ChurnModel::kInternalChurn,
        workload::ChurnModel::kFlashCrowd}) {
    const std::uint64_t n0 = 128, steps = 1200;
    Rng rng(41);
    tree::DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, n0, rng);
    apps::HeavyChild hc(t);
    workload::ChurnGenerator churn(model, Rng(43));
    std::uint64_t worst_light = 0;
    for (std::uint64_t i = 0; i < steps && t.size() >= 4; ++i) {
      const auto spec = churn.next(t);
      switch (spec.type) {
        case core::RequestSpec::Type::kAddLeaf:
          hc.request_add_leaf(spec.subject);
          break;
        case core::RequestSpec::Type::kAddInternal:
          hc.request_add_internal_above(spec.subject);
          break;
        case core::RequestSpec::Type::kRemove:
          hc.request_remove(spec.subject);
          break;
        default:
          break;
      }
      if (i % 32 == 0) {
        worst_light = std::max(worst_light, hc.max_light_ancestors());
      }
    }
    worst_light = std::max(worst_light, hc.max_light_ancestors());
    const double lg =
        std::log2(static_cast<double>(std::max<std::uint64_t>(t.size(), 4)));
    const double overhead =
        static_cast<double>(hc.messages()) /
        static_cast<double>(std::max<std::uint64_t>(
            hc.estimator().messages(), 1));
    tab.row({workload::churn_name(model), num(n0), num(t.size()),
             num(worst_light), fp(lg, 1),
             fp(static_cast<double>(worst_light) / lg), num(hc.messages()),
             fp(overhead)});
  }
  tab.print();
  std::printf("\nshape check: max light ancestors stays a small constant "
              "times log2(n); overhead factor stays ~<= 2 (paper: the "
              "parent reports at most double the message count).\n");
  return 0;
}

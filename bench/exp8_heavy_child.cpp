// EXP8 — Heavy-child decomposition maintenance (Theorem 5.4): at all times
// every node has O(log n) light ancestors; maintaining the pointers at most
// doubles the subtree-estimator's message count.
//
// Sweep churn models (one independent seeded run per model, in parallel);
// report the maximum light-ancestor count against log2(n) and the
// messaging overhead factor.

#include <cmath>

#include "apps/heavy_child.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

namespace {

struct Point {
  std::uint64_t n_final = 0;
  std::uint64_t worst_light = 0;
  std::uint64_t messages = 0;
  double overhead = 0.0;
};

Point measure(workload::ChurnModel model, std::uint64_t n0,
              std::uint64_t steps, std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  apps::HeavyChild hc(t);
  workload::ChurnGenerator churn(model, Rng(seed + 2));
  Point out;
  for (std::uint64_t i = 0; i < steps && t.size() >= 4; ++i) {
    const auto spec = churn.next(t);
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        hc.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        hc.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        hc.request_remove(spec.subject);
        break;
      default:
        break;
    }
    if (i % 32 == 0) {
      out.worst_light = std::max(out.worst_light, hc.max_light_ancestors());
    }
  }
  out.worst_light = std::max(out.worst_light, hc.max_light_ancestors());
  out.n_final = t.size();
  out.messages = hc.messages();
  out.overhead = static_cast<double>(hc.messages()) /
                 static_cast<double>(std::max<std::uint64_t>(
                     hc.estimator().messages(), 1));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp8", argc, argv);
  const std::uint64_t seed = run.base_seed(41);
  banner("EXP8: heavy-child decomposition (Thm 5.4)");

  const std::vector<workload::ChurnModel> models = {
      workload::ChurnModel::kGrowOnly, workload::ChurnModel::kBirthDeath,
      workload::ChurnModel::kInternalChurn,
      workload::ChurnModel::kFlashCrowd};
  const std::uint64_t n0 = 128, steps = 1200;
  std::vector<Point> points(models.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    points[i] = measure(models[i], n0, steps, seed);
  });

  Table tab({"churn", "n0", "n_final", "max light anc", "log2(n)",
             "ratio", "msgs", "overhead vs estimator"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    const Point& p = points[m];
    const double lg = std::log2(
        static_cast<double>(std::max<std::uint64_t>(p.n_final, 4)));
    tab.row({workload::churn_name(models[m]), num(n0), num(p.n_final),
             num(p.worst_light), fp(lg, 1),
             fp(static_cast<double>(p.worst_light) / lg), num(p.messages),
             fp(p.overhead)});
  }
  tab.print();
  std::printf("\nshape check: max light ancestors stays a small constant "
              "times log2(n); overhead factor stays ~<= 2 (paper: the "
              "parent reports at most double the message count).\n");
  return 0;
}

// EXP6 — The size-estimation protocol (Theorem 5.1): every node holds a
// beta-approximation of n at all times, with O(n0 log^2 n0 + sum log^2 n_j)
// messages.
//
// Sweep: churn models x beta; report the worst observed estimate/true
// ratio (must stay within [1/beta, beta]), amortized messages per change,
// and the polylog normalization.  The grid runs as a parallel sweep of
// independent seeded runs; output is --jobs invariant.

#include <algorithm>
#include <cmath>

#include "apps/size_estimation.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

namespace {

struct Point {
  std::uint64_t changes = 0;
  std::uint64_t n_final = 0;
  std::uint64_t iterations = 0;
  double worst_over = 1.0;
  double worst_under = 1.0;
  double per = 0.0;
};

Point measure(double beta, workload::ChurnModel model, std::uint64_t n0,
              std::uint64_t steps, std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  apps::SizeEstimation est(t, beta);
  workload::ChurnGenerator churn(model, Rng(seed + 4));
  Point out;
  for (std::uint64_t i = 0; i < steps && t.size() >= 4; ++i) {
    const auto spec = churn.next(t);
    core::Result r;
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        r = est.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        r = est.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        r = est.request_remove(spec.subject);
        break;
      default:
        continue;
    }
    out.changes += r.granted();
    const double ratio = static_cast<double>(est.estimate()) /
                         static_cast<double>(t.size());
    out.worst_over = std::max(out.worst_over, ratio);
    out.worst_under = std::max(out.worst_under, 1.0 / ratio);
  }
  out.n_final = t.size();
  out.iterations = est.iterations();
  out.per = static_cast<double>(est.messages()) /
            std::max<std::uint64_t>(out.changes, 1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp6", argc, argv);
  const std::uint64_t seed = run.base_seed(19);
  banner("EXP6: size estimation (Thm 5.1)");

  const std::vector<double> betas = {1.5, 2.0, 3.0};
  const auto models = workload::all_churn_models();
  const std::uint64_t n0 = 256, steps = 2000;

  std::vector<Point> points(betas.size() * models.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    points[i] = measure(betas[i / models.size()],
                        models[i % models.size()], n0, steps, seed);
  });

  for (std::size_t b = 0; b < betas.size(); ++b) {
    const double beta = betas[b];
    subhead("beta = " + fp(beta, 1));
    Table tab({"churn", "n0", "changes", "n_final", "iters",
               "worst over", "worst under", "msgs/change", "/log^2 n"});
    for (std::size_t m = 0; m < models.size(); ++m) {
      const Point& p = points[b * models.size() + m];
      const double lg = std::log2(static_cast<double>(
          std::max<std::uint64_t>(p.n_final, 4)));
      tab.row({workload::churn_name(models[m]), num(n0), num(p.changes),
               num(p.n_final), num(p.iterations), fp(p.worst_over),
               fp(p.worst_under), fp(p.per, 1), fp(p.per / (lg * lg), 3)});
    }
    tab.print();
    std::printf("invariant: worst over/under must both stay <= beta = %s\n",
                fp(beta, 1).c_str());
  }
  return 0;
}

// EXP6 — The size-estimation protocol (Theorem 5.1): every node holds a
// beta-approximation of n at all times, with O(n0 log^2 n0 + sum log^2 n_j)
// messages.
//
// Sweep: churn models x beta; report the worst observed estimate/true
// ratio (must stay within [1/beta, beta]), amortized messages per change,
// and the polylog normalization.

#include <algorithm>
#include <cmath>

#include "apps/size_estimation.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

int main(int argc, char** argv) {
  bench::Run run("exp6", argc, argv);
  banner("EXP6: size estimation (Thm 5.1)");

  for (double beta : {1.5, 2.0, 3.0}) {
    subhead("beta = " + fp(beta, 1));
    Table tab({"churn", "n0", "changes", "n_final", "iters",
               "worst over", "worst under", "msgs/change", "/log^2 n"});
    for (auto model : workload::all_churn_models()) {
      const std::uint64_t n0 = 256, steps = 2000;
      Rng rng(19);
      tree::DynamicTree t;
      workload::build(t, workload::Shape::kRandomAttach, n0, rng);
      apps::SizeEstimation est(t, beta);
      workload::ChurnGenerator churn(model, Rng(23));
      double worst_over = 1.0, worst_under = 1.0;
      std::uint64_t changes = 0;
      for (std::uint64_t i = 0; i < steps && t.size() >= 4; ++i) {
        const auto spec = churn.next(t);
        core::Result r;
        switch (spec.type) {
          case core::RequestSpec::Type::kAddLeaf:
            r = est.request_add_leaf(spec.subject);
            break;
          case core::RequestSpec::Type::kAddInternal:
            r = est.request_add_internal_above(spec.subject);
            break;
          case core::RequestSpec::Type::kRemove:
            r = est.request_remove(spec.subject);
            break;
          default:
            continue;
        }
        changes += r.granted();
        const double ratio = static_cast<double>(est.estimate()) /
                             static_cast<double>(t.size());
        worst_over = std::max(worst_over, ratio);
        worst_under = std::max(worst_under, 1.0 / ratio);
      }
      const double per = static_cast<double>(est.messages()) /
                         std::max<std::uint64_t>(changes, 1);
      const double lg = std::log2(static_cast<double>(std::max<std::uint64_t>(
          t.size(), 4)));
      tab.row({workload::churn_name(model), num(n0), num(changes),
               num(t.size()), num(est.iterations()), fp(worst_over),
               fp(worst_under), fp(per, 1), fp(per / (lg * lg), 3)});
    }
    tab.print();
    std::printf("invariant: worst over/under must both stay <= beta = %s\n",
                fp(beta, 1).c_str());
  }
  return 0;
}

// Micro-benchmarks (google-benchmark) for the hot data structures under
// the controller: event queue, dynamic tree operations, package table,
// RNG, and a full centralized request.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <new>
#include <vector>

#include "agent/convergecast.hpp"
#include "agent/whiteboard.hpp"
#include "forest/hibernate.hpp"
#include "forest/tree_slab.hpp"
#include "core/centralized_controller.hpp"
#include "core/distributed_controller.hpp"
#include "core/package.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/watchdog.hpp"
#include "util/rng.hpp"
#include "tree/validate.hpp"
#include "workload/shapes.hpp"

// Global allocation counter (same technique as bench/perf_suite.cpp): count
// every operator-new so the zero-allocation claims below are measured, not
// asserted from reading the code.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace dyncon;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    q.schedule_after(1, [&sink] { ++sink; });
    q.step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueBurst(benchmark::State& state) {
  const auto burst = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::uint64_t i = 0; i < burst; ++i) {
      q.schedule_after(i % 7 + 1, [&sink] { ++sink; });
    }
    q.run();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueBurst)->Arg(64)->Arg(1024);

// ---- allocation-count benches ----------------------------------------------
//
// The simulator hot path (schedule -> fire, send -> deliver) is designed to
// be allocation-free in steady state: actions are InlineFn (inline storage),
// the heap/slab vectors amortize to zero growth, and release builds take the
// size-only encoding path.  These benches measure allocations per operation
// with the global counter and report them as a benchmark counter; in release
// builds a nonzero steady-state count aborts the bench, so a regression
// (say, a capture that silently outgrows some future fallback) fails CI
// instead of shifting a number nobody reads.

void check_steady_state_allocs(const char* what, double allocs_per_op) {
#ifdef NDEBUG
  if (allocs_per_op > 0.0) {
    std::fprintf(stderr,
                 "FATAL: %s allocates in steady state (%f allocs/op); "
                 "the zero-allocation hot-path contract is broken\n",
                 what, allocs_per_op);
    std::abort();
  }
#else
  (void)what;
  (void)allocs_per_op;
#endif
}

// Steady state for the queue-backed benches begins only once every calendar
// bucket has been touched: with a fixed delay the firing tick cycles through
// all kWindow residues, and each bucket's vector allocates its capacity on
// first use (amortized — bounded by kWindow over a whole run, never again
// after one full cycle).  Warming fewer than kWindow events would count
// those one-time growths as steady-state allocations and trip the gate.
constexpr int kQueueWarmup = static_cast<int>(sim::EventQueue::kWindow) + 64;

void BM_EventQueueScheduleAllocs(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t sink = 0;
  // Warm up: first schedules grow heap/slab/buckets; steady state reuses.
  for (int i = 0; i < kQueueWarmup; ++i) {
    q.schedule_after(1, [&sink] { ++sink; });
    q.step();
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    q.schedule_after(1, [&sink] { ++sink; });
    q.step();
    ++ops;
  }
  benchmark::DoNotOptimize(sink);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  const double per_op =
      ops ? static_cast<double>(after - before) / static_cast<double>(ops) : 0;
  state.counters["allocs_per_op"] = per_op;
  check_steady_state_allocs("EventQueue::schedule_after/step", per_op);
}
BENCHMARK(BM_EventQueueScheduleAllocs);

void BM_NetworkSendAllocs(benchmark::State& state) {
  sim::EventQueue q;
  sim::Network net(q, sim::make_delay(sim::DelayKind::kFixed, 1));
  std::uint64_t sink = 0;
  const sim::Message msg = sim::Message::agent_hop(7, 3, 5, 1, 2, true);
  for (int i = 0; i < kQueueWarmup; ++i) {  // warm up heap/slab/buckets
    net.send(0, 1, msg, [&sink] { ++sink; });
    q.step();
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    net.send(0, 1, msg, [&sink] { ++sink; });
    q.step();
    ++ops;
  }
  benchmark::DoNotOptimize(sink);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  const double per_op =
      ops ? static_cast<double>(after - before) / static_cast<double>(ops) : 0;
  state.counters["allocs_per_op"] = per_op;
  // Debug builds legitimately allocate here (encode() materializes bytes for
  // the round-trip check); the release contract is zero.
  check_steady_state_allocs("Network::send/deliver", per_op);
}
BENCHMARK(BM_NetworkSendAllocs);

void BM_WatchdogArmDisarmAllocs(benchmark::State& state) {
  // The PR-4 contract, extended to the watchdog in the crash-fault PR:
  // arm/disarm run once per request on the hot path, the label is a
  // `const char*` (interned string literal, never copied), and entries
  // live in a reused slab — so steady state is allocation-free.  Each
  // iteration steps the queue once to fire the (stale) deadline event, so
  // the event heap recycles instead of growing.
  sim::EventQueue q;
  sim::Watchdog wd(q, /*deadline=*/1);
  for (int i = 0; i < kQueueWarmup; ++i) {  // warm up slab + calendar growth
    wd.disarm(wd.arm(0, "warmup"));
    q.step();
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    wd.disarm(wd.arm(0, "bench"));
    q.step();
    ++ops;
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  const double per_op =
      ops ? static_cast<double>(after - before) / static_cast<double>(ops) : 0;
  state.counters["allocs_per_op"] = per_op;
  check_steady_state_allocs("Watchdog::arm/disarm", per_op);
  wd.verify_idle();
}
BENCHMARK(BM_WatchdogArmDisarmAllocs);

void BM_TreeSlabAcquireReleaseAllocs(benchmark::State& state) {
  // The forest's per-tree arena: a hibernation cycle is release -> (later)
  // acquire, and the slab machinery itself — free-list pop/push, in-place
  // slot reset — must be allocation-free once the first chunk exists.
  // (Rebuilding a woken tree's topology is the wake path's cost, priced by
  // the engine's hibernation counters and amortized by the residency
  // budget; the engine's own steady-state gate measures the no-eviction
  // loop, where no slab call happens at all.)
  forest::TreeSlab slab;
  for (int i = 0; i < 256; ++i) {  // warm up: first chunk + free list
    slab.release(slab.acquire());
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t ops = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const std::uint32_t slot = slab.acquire();
    sink += slab.at(slot).tree.size();
    slab.release(slot);
    ++ops;
  }
  benchmark::DoNotOptimize(sink);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  const double per_op =
      ops ? static_cast<double>(after - before) / static_cast<double>(ops) : 0;
  state.counters["allocs_per_op"] = per_op;
  check_steady_state_allocs("TreeSlab::acquire/release", per_op);
}
BENCHMARK(BM_TreeSlabAcquireReleaseAllocs);

void BM_HibernateEncodeAllocs(benchmark::State& state) {
  // Hibernating a tree encodes its TreeImage into a recycled byte buffer
  // (the frozen-slot free list hands the last Encoded back to BitWriter's
  // reuse constructor).  After the first encode sizes the buffer, the
  // capture -> encode cycle must not touch the allocator.
  tree::DynamicTree t;
  Rng build_rng(0x51ab51abULL);
  forest::build_initial_topology(t, build_rng, 48);
  std::vector<NodeId> grown;
  for (int i = 0; i < 8; ++i) {
    grown.push_back(t.add_leaf(static_cast<NodeId>(i)));
  }
  Rng tree_rng(0xfeedbeefULL);
  forest::TreeImage img;
  sim::Encoded enc;
  {
    // Warm up: capture once (sizes img.grown) and encode once (sizes the
    // byte buffer).
    forest::capture_tree_image(img, t, nullptr, tree_rng, grown,
                               grown.size());
    enc = forest::encode_tree_image(img, std::move(enc));
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t ops = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    forest::capture_tree_image(img, t, nullptr, tree_rng, grown,
                               grown.size());
    enc = forest::encode_tree_image(img, std::move(enc));
    sink += enc.bits;
    ++ops;
  }
  benchmark::DoNotOptimize(sink);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  const double per_op =
      ops ? static_cast<double>(after - before) / static_cast<double>(ops) : 0;
  state.counters["allocs_per_op"] = per_op;
  check_steady_state_allocs("capture/encode_tree_image", per_op);
}
BENCHMARK(BM_HibernateEncodeAllocs);

void BM_TreeAddRemoveLeaf(benchmark::State& state) {
  tree::DynamicTree t;
  for (auto _ : state) {
    const NodeId u = t.add_leaf(t.root());
    t.remove_leaf(u);
  }
}
BENCHMARK(BM_TreeAddRemoveLeaf);

void BM_TreeDepthQuery(benchmark::State& state) {
  Rng rng(3);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kPath,
                  static_cast<std::uint64_t>(state.range(0)), rng);
  const NodeId deep = t.alive_nodes().back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.depth(deep));
  }
}
BENCHMARK(BM_TreeDepthQuery)->Arg(64)->Arg(1024);

void BM_PackageSplitCycle(benchmark::State& state) {
  for (auto _ : state) {
    core::PackageTable tbl;
    core::PackageId p = tbl.create_mobile(0, 6, 64);
    // Split all the way down to level 0.
    for (int lvl = 6; lvl > 0; --lvl) {
      auto [a, b] = tbl.split_mobile(p);
      tbl.cancel(a);
      p = b;
    }
    benchmark::DoNotOptimize(tbl.permits_in_packages());
  }
}
BENCHMARK(BM_PackageSplitCycle);

void BM_CentralizedRequest(benchmark::State& state) {
  Rng rng(5);
  tree::DynamicTree t;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  workload::build(t, workload::Shape::kRandomAttach, n, rng);
  core::CentralizedController::Options opts;
  opts.track_domains = false;
  // Effectively unbounded M so the loop never exhausts.
  core::CentralizedController ctrl(t, core::Params(1u << 30, 1u << 29, 2 * n),
                                   opts);
  const auto nodes = t.alive_nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctrl.request_event(nodes[i++ % nodes.size()]).outcome);
  }
}
BENCHMARK(BM_CentralizedRequest)->Arg(256)->Arg(4096);

void BM_DistributedRequest(benchmark::State& state) {
  Rng rng(7);
  sim::EventQueue queue;
  sim::Network net(queue,
                   sim::make_delay(sim::DelayKind::kFixed, 1));
  tree::DynamicTree t;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  workload::build(t, workload::Shape::kRandomAttach, n, rng);
  core::DistributedController::Options opts;
  opts.track_domains = false;
  core::DistributedController ctrl(
      net, t, core::Params(1u << 30, 1u << 29, 2 * n), opts);
  core::DistributedSyncFacade facade(queue, ctrl);
  const auto nodes = t.alive_nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        facade.request_event(nodes[i++ % nodes.size()]).outcome);
  }
}
BENCHMARK(BM_DistributedRequest)->Arg(256)->Arg(2048);

void BM_Convergecast(benchmark::State& state) {
  Rng rng(9);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach,
                  static_cast<std::uint64_t>(state.range(0)), rng);
  agent::Convergecast cast(net, t);
  for (auto _ : state) {
    std::uint64_t out = 0;
    cast.count_nodes([&](std::uint64_t n2) { out = n2; });
    queue.run();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Convergecast)->Arg(256)->Arg(2048);

void BM_TreeValidate(benchmark::State& state) {
  Rng rng(11);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach,
                  static_cast<std::uint64_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree::validate(t).valid);
  }
}
BENCHMARK(BM_TreeValidate)->Arg(256)->Arg(2048);

// Instrumentation overhead: the acceptance bar is that the uninstalled
// (no-sink) path costs one predictable branch -- these four pin it down
// against the installed path and the raw ring-buffer event write.
void BM_ObsCountNoSink(benchmark::State& state) {
  obs::install_metrics(nullptr);
  for (auto _ : state) {
    obs::count("permits.granted");
  }
}
BENCHMARK(BM_ObsCountNoSink);

void BM_ObsCountInstalled(benchmark::State& state) {
  obs::Registry reg;
  obs::ScopedMetrics scope(reg);
  for (auto _ : state) {
    obs::count("permits.granted");
  }
}
BENCHMARK(BM_ObsCountInstalled);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry reg;
  obs::ScopedMetrics scope(reg);
  std::uint64_t v = 1;
  for (auto _ : state) {
    obs::observe("net.message_bits", v++ & 0xffff);
  }
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsEmitNoSink(benchmark::State& state) {
  obs::install_trace(nullptr);
  for (auto _ : state) {
    obs::emit(obs::TraceEvent{obs::EventKind::kAgentHop, 0, 1, 2, 3});
  }
}
BENCHMARK(BM_ObsEmitNoSink);

void BM_ObsEmitInstalled(benchmark::State& state) {
  obs::EventTrace trace(1024);
  trace.enable(true);
  obs::ScopedTrace scope(trace);
  for (auto _ : state) {
    obs::emit(obs::TraceEvent{obs::EventKind::kAgentHop, 0, 1, 2, 3});
  }
}
BENCHMARK(BM_ObsEmitInstalled);

// ---- batch frames (PR 9) ----------------------------------------------------

std::vector<sim::Encoded> make_payload_mix(std::size_t n) {
  std::vector<sim::Encoded> payloads;
  payloads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 3) {
      case 0:
        payloads.push_back(
            sim::Message::agent_hop(i, i * 3 + 1, i * 5 + 2,
                                    static_cast<std::uint32_t>(i % 7),
                                    static_cast<std::uint8_t>(i % 4), i % 2)
                .encode());
        break;
      case 1:
        payloads.push_back(sim::Message::data_move(i * 11 + 1).encode());
        break;
      default:
        payloads.push_back(sim::Message::reject_wave().encode());
        break;
    }
  }
  return payloads;
}

void BM_BatchFrameEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<sim::Encoded> payloads = make_payload_mix(n);
  const sim::Message frame = sim::Message::batch_frame(payloads);
  // The release network never assembles frames — it charges them with
  // batch_frame_bits.  Pin the arithmetic to the real encoder once here.
  std::vector<std::uint64_t> sizes;
  for (const sim::Encoded& p : payloads) sizes.push_back(p.bits);
  if (frame.encode().bits != sim::batch_frame_bits(sizes.data(), n)) {
    std::fprintf(stderr,
                 "FATAL: batch_frame_bits disagrees with Message::encode\n");
    std::abort();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.encode().bits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchFrameEncode)->Arg(4)->Arg(16);

void BM_BatchFrameDecode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sim::Message frame = sim::Message::batch_frame(make_payload_mix(n));
  const sim::Encoded enc = frame.encode();
  if (!(sim::Message::decode(enc) == frame)) {
    std::fprintf(stderr, "FATAL: batch frame wire round-trip mismatch\n");
    std::abort();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::Message::decode(enc).kind());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchFrameDecode)->Arg(4)->Arg(16);

void BM_NetworkBatchSendAllocs(benchmark::State& state) {
  // The coalesced path end to end: two same-edge sends per iteration (the
  // second upgrades the pending plain head into a frame), one step fires
  // both members out of the frame slot.  Slots, entry vectors, and the
  // queue slab all recycle, so steady state must stay allocation-free —
  // the same contract BM_NetworkSendAllocs pins for the unbatched path.
  sim::EventQueue q;
  sim::Network net(q, sim::make_delay(sim::DelayKind::kFixed, 1));
  std::uint64_t sink = 0;
  const sim::Message msg = sim::Message::agent_hop(7, 3, 5, 1, 2, true);
  for (int i = 0; i < kQueueWarmup; ++i) {  // warm up slab/buckets/slot pool
    net.send(0, 1, msg, [&sink] { ++sink; });
    net.send(0, 1, msg, [&sink] { ++sink; });
    q.step();
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    net.send(0, 1, msg, [&sink] { ++sink; });
    net.send(0, 1, msg, [&sink] { ++sink; });
    q.step();
    ++ops;
  }
  benchmark::DoNotOptimize(sink);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  const double per_op =
      ops ? static_cast<double>(after - before) / static_cast<double>(ops) : 0;
  state.counters["allocs_per_op"] = per_op;
  // Debug builds legitimately allocate here (the frame round-trip check
  // copies payloads); the release contract is zero.
  check_steady_state_allocs("Network::send coalesced/fire_batch", per_op);
}
BENCHMARK(BM_NetworkBatchSendAllocs);

// ---- whiteboard columns (PR 9) ----------------------------------------------

void BM_WhiteboardScanSoA(benchmark::State& state) {
  // The crash-recovery lock sweep's shape: one pass over the locked_by
  // column.  The SoA layout reads 8 contiguous bytes per board.
  const auto n = static_cast<std::size_t>(state.range(0));
  agent::WhiteboardManager wb;
  for (std::size_t v = 0; v < n; ++v) {
    if (v % 7 == 0) {
      wb.lock(static_cast<NodeId>(v), v, kNoNode);
    } else {
      wb.set_flooded(static_cast<NodeId>(v), false);  // grow the board only
    }
  }
  for (auto _ : state) {
    std::uint64_t locked = 0;
    for (std::size_t v = 0; v < wb.board_count(); ++v) {
      locked += wb.locked_by(static_cast<NodeId>(v)) != agent::kNoAgent;
    }
    benchmark::DoNotOptimize(locked);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WhiteboardScanSoA)->Arg(4096)->Arg(65536);

void BM_WhiteboardScanRecords(benchmark::State& state) {
  // Baseline: the pre-PR-9 record-per-node layout (deque of structs, wait
  // queue inline), striding a 100+-byte record to read one 8-byte field.
  struct Record {
    agent::AgentId locked_by = agent::kNoAgent;
    NodeId down_child = kNoNode;
    std::uint8_t flooded = 0;
    std::deque<agent::Waiter> queue;
  };
  const auto n = static_cast<std::size_t>(state.range(0));
  std::deque<Record> boards;
  for (std::size_t v = 0; v < n; ++v) {
    boards.emplace_back();
    if (v % 7 == 0) boards.back().locked_by = v;
  }
  for (auto _ : state) {
    std::uint64_t locked = 0;
    for (const Record& r : boards) {
      locked += r.locked_by != agent::kNoAgent;
    }
    benchmark::DoNotOptimize(locked);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WhiteboardScanRecords)->Arg(4096)->Arg(65536);

void BM_WhiteboardLockUnlockAllocs(benchmark::State& state) {
  // The per-hop column writes: lock + unlock touch two 8-byte entries and
  // (queue empty) never allocate once the columns have grown.
  agent::WhiteboardManager wb;
  for (int i = 0; i < 64; ++i) {  // warm up column growth
    wb.lock(5, 1, kNoNode);
    benchmark::DoNotOptimize(wb.unlock(5, 1).has_value());
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    wb.lock(5, 1, kNoNode);
    benchmark::DoNotOptimize(wb.unlock(5, 1).has_value());
    ++ops;
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  const double per_op =
      ops ? static_cast<double>(after - before) / static_cast<double>(ops) : 0;
  state.counters["allocs_per_op"] = per_op;
  check_steady_state_allocs("WhiteboardManager::lock/unlock", per_op);
}
BENCHMARK(BM_WhiteboardLockUnlockAllocs);

// ---- counter-handle epoch cache (PR 9, S1) ----------------------------------

void BM_ObsCounterHandleRebind(benchmark::State& state) {
  // Regression guard for the thread_local-handle class of bug (the
  // package.cpp `moves_batch` shadowing): a function-local static
  // thread_local handle must re-resolve its cached slot on every registry
  // swap, never bleeding counts into a previously-installed registry.
  // Verified with real swaps before timing the steady-state add.
  static thread_local obs::CounterHandle handle("bench.rebind");
  obs::Registry a;
  obs::Registry b;
  {
    obs::ScopedMetrics scope(a);
    handle.add(1);
  }
  {
    obs::ScopedMetrics scope(b);
    handle.add(2);
  }
  {
    obs::ScopedMetrics scope(a);
    handle.add(4);
  }
  const auto count_in = [](const obs::Registry& r) -> std::uint64_t {
    const auto it = r.counters().find("bench.rebind");
    return it == r.counters().end() ? 0 : it->second;
  };
  if (count_in(a) != 5 || count_in(b) != 2) {
    std::fprintf(stderr,
                 "FATAL: CounterHandle epoch cache leaked across a registry "
                 "swap (a=%llu want 5, b=%llu want 2)\n",
                 static_cast<unsigned long long>(count_in(a)),
                 static_cast<unsigned long long>(count_in(b)));
    std::abort();
  }
  obs::ScopedMetrics scope(a);
  for (auto _ : state) {
    handle.add(1);
  }
}
BENCHMARK(BM_ObsCounterHandleRebind);

}  // namespace

BENCHMARK_MAIN();

// EXP1 — Centralized move complexity scaling (Lemma 3.3, Observation 3.4).
//
// Paper claim: the iterated (M,W)-controller has move complexity
// O(U log^2 U log(M/(W+1))).  We flood trees of doubling size with M = n
// requests (W = M/2, so the log factor is 1) and report the measured move
// complexity, the normalized constant cost / (U log^2 U), and the empirical
// log-log slope.  The shape to observe: the normalized constant stays flat
// (or falls) while the trivial-controller yardstick in EXP3 grows linearly.

#include <cmath>

#include "bench_util.hpp"
#include "core/iterated_controller.hpp"
#include "util/stats.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

std::uint64_t flood(workload::Shape shape, std::uint64_t n,
                    std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, shape, n, rng);
  IteratedController ctrl(t, n, n / 2, 2 * n);
  const auto nodes = t.alive_nodes();
  for (std::uint64_t i = 0; i < n; ++i) {
    ctrl.request_event(nodes[rng.index(nodes.size())]);
  }
  return ctrl.cost();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp1", argc, argv);
  run.param("seed", std::uint64_t{7});
  run.param("n_max", std::uint64_t{8192});
  banner("EXP1: centralized (M,W)-controller move complexity scaling");
  std::printf("claim: O(U log^2 U log(M/(W+1))); here W = M/2 so the log "
              "factor is 1\n");

  for (workload::Shape shape :
       {workload::Shape::kPath, workload::Shape::kRandomAttach,
        workload::Shape::kCaterpillar}) {
    subhead(std::string("shape = ") + workload::shape_name(shape));
    Table tab({"n", "moves", "moves/(U log^2 U)", "moves/n"});
    std::vector<double> xs, ys;
    for (std::uint64_t n : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
      const std::uint64_t cost = flood(shape, n, 7);
      const double U = 2.0 * static_cast<double>(n);
      const double norm =
          static_cast<double>(cost) / (U * std::log2(U) * std::log2(U));
      tab.row({num(n), num(cost), fp(norm, 4),
               fp(static_cast<double>(cost) / static_cast<double>(n), 1)});
      xs.push_back(static_cast<double>(n));
      ys.push_back(static_cast<double>(cost));
    }
    tab.print();
    std::printf("empirical log-log slope: %.3f (1.0 = linear, 2.0 = "
                "quadratic; polylog factors push it slightly above 1)\n",
                loglog_slope(xs, ys));
  }
  return 0;
}

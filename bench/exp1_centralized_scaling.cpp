// EXP1 — Centralized move complexity scaling (Lemma 3.3, Observation 3.4).
//
// Paper claim: the iterated (M,W)-controller has move complexity
// O(U log^2 U log(M/(W+1))).  We flood trees of doubling size with M = n
// requests (W = M/2, so the log factor is 1) and report the measured move
// complexity, the normalized constant cost / (U log^2 U), and the empirical
// log-log slope.  The shape to observe: the normalized constant stays flat
// (or falls) while the trivial-controller yardstick in EXP3 grows linearly.
//
// The (shape, n) grid is a parallel sweep: every point is an independent
// seeded run, so the table is byte-identical at any --jobs value.

#include <cmath>

#include "bench_util.hpp"
#include "core/iterated_controller.hpp"
#include "util/stats.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

std::uint64_t flood(workload::Shape shape, std::uint64_t n,
                    std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, shape, n, rng);
  IteratedController ctrl(t, n, n / 2, 2 * n);
  const auto nodes = t.alive_nodes();
  for (std::uint64_t i = 0; i < n; ++i) {
    ctrl.request_event(nodes[rng.index(nodes.size())]);
  }
  return ctrl.cost();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp1", argc, argv);
  const std::uint64_t seed = run.base_seed(7);
  run.param("seed", seed);
  run.param("n_max", std::uint64_t{8192});
  banner("EXP1: centralized (M,W)-controller move complexity scaling");
  std::printf("claim: O(U log^2 U log(M/(W+1))); here W = M/2 so the log "
              "factor is 1\n");

  const std::vector<workload::Shape> shapes = {
      workload::Shape::kPath, workload::Shape::kRandomAttach,
      workload::Shape::kCaterpillar};
  const std::vector<std::uint64_t> sizes = {256, 512, 1024, 2048, 4096,
                                            8192};

  // One flattened (shape, n) grid; results land in per-point slots and the
  // tables print after the sweep, in point order.
  std::vector<std::uint64_t> cost(shapes.size() * sizes.size());
  parallel_sweep(run, cost.size(), [&](std::size_t i) {
    cost[i] = flood(shapes[i / sizes.size()], sizes[i % sizes.size()], seed);
  });

  for (std::size_t s = 0; s < shapes.size(); ++s) {
    subhead(std::string("shape = ") + workload::shape_name(shapes[s]));
    Table tab({"n", "moves", "moves/(U log^2 U)", "moves/n"});
    std::vector<double> xs, ys;
    for (std::size_t j = 0; j < sizes.size(); ++j) {
      const std::uint64_t n = sizes[j];
      const std::uint64_t c = cost[s * sizes.size() + j];
      const double U = 2.0 * static_cast<double>(n);
      const double norm =
          static_cast<double>(c) / (U * std::log2(U) * std::log2(U));
      tab.row({num(n), num(c), fp(norm, 4),
               fp(static_cast<double>(c) / static_cast<double>(n), 1)});
      xs.push_back(static_cast<double>(n));
      ys.push_back(static_cast<double>(c));
    }
    tab.print();
    std::printf("empirical log-log slope: %.3f (1.0 = linear, 2.0 = "
                "quadratic; polylog factors push it slightly above 1)\n",
                loglog_slope(xs, ys));
  }
  return 0;
}

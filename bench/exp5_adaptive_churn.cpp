// EXP5 — The unknown-U adaptive controller under churn (Theorem 3.5 /
// Theorem 4.9): move complexity O(n0 log^2 n0 log(M/(W+1)) +
// sum_j log^2 n_j log(M/(W+1))), i.e. amortized polylog per topological
// change even as the network grows and shrinks.
//
// Workloads: every churn model; the table reports amortized moves per
// granted change and that number normalized by log^2(n_final); both
// adaptive policies (change-count rotation of part 1, size-doubling of
// part 2) are swept.

#include <cmath>

#include "bench_util.hpp"
#include "core/adaptive_controller.hpp"
#include "workload/churn.hpp"
#include "workload/scenario.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct RunOutcome {
  std::uint64_t cost;
  std::uint64_t granted;
  std::uint64_t iterations;
  std::uint64_t n_final;
};

RunOutcome run(workload::ChurnModel model, AdaptiveController::Policy policy,
            std::uint64_t n0, std::uint64_t steps, std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  AdaptiveController::Options opts;
  opts.policy = policy;
  opts.track_domains = false;
  AdaptiveController ctrl(t, /*M=*/4 * steps, /*W=*/8, opts);
  workload::ChurnGenerator churn(model, Rng(seed + 2));
  workload::run_churn(ctrl, t, churn, steps, /*event_fraction=*/0.0, rng);
  return {ctrl.cost(), ctrl.permits_granted(), ctrl.iterations(), t.size()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run report_run("exp5", argc, argv);
  const std::uint64_t seed = report_run.base_seed(11);
  banner("EXP5: adaptive (unknown-U) controller under churn (Thm 3.5/4.9)");

  // Flattened (policy, churn) grid as a parallel sweep; per-policy tables
  // print after all points land.
  const std::vector<AdaptiveController::Policy> policies = {
      AdaptiveController::Policy::kChangeCount,
      AdaptiveController::Policy::kSizeDoubling};
  const auto models = workload::all_churn_models();
  const std::uint64_t n0 = 256, steps = 2048;
  std::vector<RunOutcome> points(policies.size() * models.size());
  parallel_sweep(report_run, points.size(), [&](std::size_t i) {
    points[i] = run(models[i % models.size()], policies[i / models.size()],
                    n0, steps, seed);
  });

  for (std::size_t p = 0; p < policies.size(); ++p) {
    subhead(policies[p] == AdaptiveController::Policy::kChangeCount
                ? "policy: part 1 (rotate after U_i/4 changes)"
                : "policy: part 2 (rotate on size doubling)");
    Table tab({"churn", "n0", "steps", "n_final", "iters", "moves",
               "moves/change", "norm /log^2(n)"});
    for (std::size_t m = 0; m < models.size(); ++m) {
      const RunOutcome& o = points[p * models.size() + m];
      const double per =
          static_cast<double>(o.cost) / std::max<std::uint64_t>(o.granted, 1);
      const double lg = std::log2(std::max<double>(
          static_cast<double>(o.n_final), 4.0));
      tab.row({workload::churn_name(models[m]), num(n0), num(steps),
               num(o.n_final), num(o.iterations), num(o.cost), fp(per, 1),
               fp(per / (lg * lg), 3)});
    }
    tab.print();
  }
  std::printf("\nshape check: moves/change normalized by log^2(n) is a "
              "small flat constant across churn models and policies — the "
              "paper's amortized bound, in a model AAPS cannot run at all "
              "(deletions + internal insertions).\n");
  return 0;
}

// EXP2 — Distributed message complexity tracks centralized move complexity
// (Lemma 4.5, Theorem 4.7).
//
// Paper claim: the distributed controller's message complexity is
// asymptotically the centralized controller's move complexity (the agent
// walks at most ~4x each package-move distance, plus O(U) side terms), and
// this holds for every message-delay schedule.  We run the same flood
// through both and report the ratio per delay adversary.
//
// The (delay, n) grid is a parallel sweep of independent seeded runs;
// tables and the metrics report are byte-identical at any --jobs value.

#include "bench_util.hpp"
#include "core/centralized_controller.hpp"
#include "core/distributed_controller.hpp"
#include "util/stats.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct Point {
  std::uint64_t cent_cost = 0;
  std::uint64_t dist_messages = 0;
  std::uint64_t max_message_bits = 0;
  std::uint64_t tree_size = 0;
};

Point measure(sim::DelayKind kind, std::uint64_t n, std::uint64_t seed) {
  const Params params(n, n / 2, 2 * n);

  Rng rng_c(seed);
  tree::DynamicTree tc;
  workload::build(tc, workload::Shape::kPath, n, rng_c);
  CentralizedController::Options copts;
  copts.track_domains = false;
  CentralizedController cent(tc, params, copts);

  Rng rng_d(seed);
  tree::DynamicTree td;
  workload::build(td, workload::Shape::kPath, n, rng_d);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(kind, seed + 4));
  DistributedController::Options dopts;
  dopts.track_domains = false;
  DistributedController dist(net, td, params, dopts);
  DistributedSyncFacade facade(queue, dist);

  Rng pick(seed + 4);
  const auto nodes = td.alive_nodes();
  for (std::uint64_t i = 0; i < n; ++i) {
    const NodeId u = nodes[pick.index(nodes.size())];
    cent.request_event(u);
    facade.request_event(u);
  }
  bench::Run::note_net(net.stats());
  return {cent.cost(), dist.messages_used(), net.stats().max_message_bits,
          td.size()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp2", argc, argv);
  const std::uint64_t seed = run.base_seed(13);
  banner("EXP2: distributed message complexity vs centralized moves");
  std::printf("claim (Lemma 4.5): messages <= ~4x centralized moves + O(U), "
              "independent of the delay schedule\n");

  const std::vector<sim::DelayKind> kinds = {
      sim::DelayKind::kFixed, sim::DelayKind::kUniform,
      sim::DelayKind::kHeavyTail, sim::DelayKind::kBiased};
  const std::vector<std::uint64_t> sizes = {128, 256, 512, 1024, 2048};

  std::vector<Point> points(kinds.size() * sizes.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    points[i] =
        measure(kinds[i / sizes.size()], sizes[i % sizes.size()], seed);
  });

  for (std::size_t k = 0; k < kinds.size(); ++k) {
    subhead(std::string("delay adversary = ") +
            sim::delay_kind_name(kinds[k]));
    Table tab({"n", "central moves", "dist messages", "ratio",
               "max msg bits", "c*log2(N)"});
    for (std::size_t j = 0; j < sizes.size(); ++j) {
      const Point& p = points[k * sizes.size() + j];
      const double ratio = static_cast<double>(p.dist_messages) /
                           static_cast<double>(p.cent_cost);
      tab.row({num(sizes[j]), num(p.cent_cost), num(p.dist_messages),
               fp(ratio), num(p.max_message_bits),
               num(4 * ceil_log2(p.tree_size))});
    }
    tab.print();
  }
  return 0;
}

// EXP2 — Distributed message complexity tracks centralized move complexity
// (Lemma 4.5, Theorem 4.7).
//
// Paper claim: the distributed controller's message complexity is
// asymptotically the centralized controller's move complexity (the agent
// walks at most ~4x each package-move distance, plus O(U) side terms), and
// this holds for every message-delay schedule.  We run the same flood
// through both and report the ratio per delay adversary.

#include "bench_util.hpp"
#include "core/centralized_controller.hpp"
#include "core/distributed_controller.hpp"
#include "util/stats.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

int main(int argc, char** argv) {
  bench::Run run("exp2", argc, argv);
  banner("EXP2: distributed message complexity vs centralized moves");
  std::printf("claim (Lemma 4.5): messages <= ~4x centralized moves + O(U), "
              "independent of the delay schedule\n");

  for (sim::DelayKind kind :
       {sim::DelayKind::kFixed, sim::DelayKind::kUniform,
        sim::DelayKind::kHeavyTail, sim::DelayKind::kBiased}) {
    subhead(std::string("delay adversary = ") + sim::delay_kind_name(kind));
    Table tab({"n", "central moves", "dist messages", "ratio",
               "max msg bits", "c*log2(N)"});
    for (std::uint64_t n : {128u, 256u, 512u, 1024u, 2048u}) {
      const Params params(n, n / 2, 2 * n);

      Rng rng_c(13);
      tree::DynamicTree tc;
      workload::build(tc, workload::Shape::kPath, n, rng_c);
      CentralizedController::Options copts;
      copts.track_domains = false;
      CentralizedController cent(tc, params, copts);

      Rng rng_d(13);
      tree::DynamicTree td;
      workload::build(td, workload::Shape::kPath, n, rng_d);
      sim::EventQueue queue;
      sim::Network net(queue, sim::make_delay(kind, 17));
      DistributedController::Options dopts;
      dopts.track_domains = false;
      DistributedController dist(net, td, params, dopts);
      DistributedSyncFacade facade(queue, dist);

      Rng pick(17);
      const auto nodes = td.alive_nodes();
      for (std::uint64_t i = 0; i < n; ++i) {
        const NodeId u = nodes[pick.index(nodes.size())];
        cent.request_event(u);
        facade.request_event(u);
      }
      const double ratio = static_cast<double>(dist.messages_used()) /
                           static_cast<double>(cent.cost());
      tab.row({num(n), num(cent.cost()), num(dist.messages_used()),
               fp(ratio), num(net.stats().max_message_bits),
               num(4 * ceil_log2(td.size()))});
      bench::Run::note_net(net.stats());
    }
    tab.print();
  }
  return 0;
}

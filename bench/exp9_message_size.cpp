// EXP9 — Message size and per-node memory (§2.1.1, Lemma 4.5, Claim 4.8).
//
// Paper claims: every message is encoded with O(log N) bits; per-node
// memory is O(deg(v) log N + log^3 N + log^2 U) bits.  We sweep N, flood
// the distributed controller, and report the maximum message size measured
// against log2(N), plus the worst per-node memory against the claimed
// decomposition.

#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "core/distributed_controller.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

int main() {
  banner("EXP9: O(log N)-bit messages and Claim 4.8 memory");

  Table tab({"N", "max msg bits", "log2(N)", "bits/log2(N)",
             "worst node mem (bits)", "claim bound (bits)"});
  for (std::uint64_t n : {64u, 256u, 1024u, 4096u}) {
    Rng rng(47);
    tree::DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, n, rng);
    sim::EventQueue queue;
    sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
    DistributedController::Options opts;
    opts.track_domains = false;
    DistributedController ctrl(net, t, Params(n, n / 2, 2 * n), opts);
    DistributedSyncFacade facade(queue, ctrl);
    const auto nodes = t.alive_nodes();
    for (std::uint64_t i = 0; i < n / 2; ++i) {
      facade.request_event(nodes[rng.index(nodes.size())]);
    }
    const double lg = std::log2(static_cast<double>(n));
    const double lU = std::log2(static_cast<double>(2 * n));
    std::uint64_t worst_mem = 0, worst_bound = 0;
    for (NodeId v : t.alive_nodes()) {
      const std::uint64_t mem = ctrl.memory_bits(v);
      if (mem > worst_mem) {
        worst_mem = mem;
        const double deg = static_cast<double>(t.children(v).size());
        worst_bound = static_cast<std::uint64_t>(
            deg * lg + lg * lg * lg + lU * lU + 64);
      }
    }
    tab.row({num(n), num(net.stats().max_message_bits), fp(lg, 1),
             fp(static_cast<double>(net.stats().max_message_bits) / lg),
             num(worst_mem), num(worst_bound)});
  }
  tab.print();
  std::printf("\nshape check: bits/log2(N) is a flat small constant; node "
              "memory tracks the deg*logN + log^3 N + log^2 U "
              "decomposition.\n");
  return 0;
}

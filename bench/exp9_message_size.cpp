// EXP9 — Message size and per-node memory (§2.1.1, Lemma 4.5, Claim 4.8).
//
// Paper claims: every message is encoded with O(log N) bits; per-node
// memory is O(deg(v) log N + log^3 N + log^2 U) bits.  We sweep N, flood
// the distributed controller, and report the *measured* encoded sizes —
// per kind, against the c*log U envelope the strict mode is armed with —
// plus the worst per-node memory against the claimed decomposition.  A
// message over the envelope aborts the run instead of skewing a column.
//
// Besides the table, the bench emits one machine-readable JSON line per
// sweep point (per-kind counts and max bits, the envelope, the size
// histogram), so plots of the measured shape need no table scraping.
// Sweep points run in parallel; all printing happens afterwards in point
// order, so stdout is byte-identical at any --jobs value.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/distributed_controller.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

void emit_json(std::uint64_t n, std::uint64_t u, const sim::NetStats& st) {
  std::printf("json: {\"experiment\":\"exp9\",\"n\":%llu,\"u\":%llu,"
              "\"envelope_bits\":%llu,\"max_message_bits\":%llu,"
              "\"per_kind\":{",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(u),
              static_cast<unsigned long long>(sim::size_envelope_bits(u)),
              static_cast<unsigned long long>(st.max_message_bits));
  for (std::size_t k = 0; k < sim::NetStats::kKinds; ++k) {
    std::printf("%s\"%s\":{\"count\":%llu,\"bits\":%llu,\"max_bits\":%llu}",
                k ? "," : "",
                sim::msg_kind_name(static_cast<sim::MsgKind>(k)),
                static_cast<unsigned long long>(st.by_kind[k]),
                static_cast<unsigned long long>(st.bits_by_kind[k]),
                static_cast<unsigned long long>(st.max_bits_by_kind[k]));
  }
  // The histogram is indexed by bit-width; trailing empty buckets elided.
  std::size_t top = st.size_histogram.size();
  while (top > 0 && st.size_histogram[top - 1] == 0) --top;
  std::printf("},\"size_histogram\":[");
  for (std::size_t w = 0; w < top; ++w) {
    std::printf("%s%llu", w ? "," : "",
                static_cast<unsigned long long>(st.size_histogram[w]));
  }
  std::printf("]}\n");
}

struct Point {
  sim::NetStats st;
  std::uint64_t worst_mem = 0;
  std::uint64_t worst_bound = 0;
};

Point measure(std::uint64_t n, std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n, rng);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  const std::uint64_t u = 2 * n;
  // Strict mode: any message measuring above the envelope aborts EXP9.
  net.set_strict_max_bits(sim::size_envelope_bits(u));
  DistributedController::Options opts;
  opts.track_domains = false;
  DistributedController ctrl(net, t, Params(n, n / 2, u), opts);
  DistributedSyncFacade facade(queue, ctrl);
  const auto nodes = t.alive_nodes();
  for (std::uint64_t i = 0; i < n / 2; ++i) {
    facade.request_event(nodes[rng.index(nodes.size())]);
  }
  const double lg = std::log2(static_cast<double>(n));
  const double lU = std::log2(static_cast<double>(u));
  Point out;
  for (NodeId v : t.alive_nodes()) {
    const std::uint64_t mem = ctrl.memory_bits(v);
    if (mem > out.worst_mem) {
      out.worst_mem = mem;
      const double deg = static_cast<double>(t.children(v).size());
      out.worst_bound = static_cast<std::uint64_t>(
          deg * lg + lg * lg * lg + lU * lU + 64);
    }
  }
  out.st = net.stats();
  bench::Run::note_net(out.st);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp9", argc, argv);
  const std::uint64_t seed = run.base_seed(47);
  run.param("seed", seed);
  run.param("sizes", std::string("64,256,1024,4096"));
  banner("EXP9: measured O(log N)-bit messages and Claim 4.8 memory");

  const std::vector<std::uint64_t> sizes = {64, 256, 1024, 4096};
  std::vector<Point> points(sizes.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    points[i] = measure(sizes[i], seed);
  });

  Table tab({"N", "max msg bits", "agent max", "control max", "envelope",
             "bits/log2(N)", "worst node mem (bits)", "claim bound (bits)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::uint64_t n = sizes[i];
    const std::uint64_t u = 2 * n;
    const Point& p = points[i];
    const double lg = std::log2(static_cast<double>(n));
    tab.row({num(n), num(p.st.max_message_bits),
             num(p.st.kind_max_bits(sim::MsgKind::kAgent)),
             num(p.st.kind_max_bits(sim::MsgKind::kControl)),
             num(sim::size_envelope_bits(u)),
             fp(static_cast<double>(p.st.max_message_bits) / lg),
             num(p.worst_mem), num(p.worst_bound)});
    emit_json(n, u, p.st);
  }
  tab.print();
  std::printf("\nshape check: measured bits/log2(N) is a flat small "
              "constant and every kind stays under the c*log U envelope "
              "(strict mode would have aborted otherwise); node memory "
              "tracks the deg*logN + log^3 N + log^2 U decomposition.\n");
  return 0;
}

// EXP17 — The price of reliability.
//
// The paper's message-complexity theorems assume reliable links for free;
// this bench measures what providing that assumption costs when the links
// are not reliable.  A fixed request workload runs behind the reliable
// channel while the drop rate sweeps upward; every retransmission, ack,
// and frame header is measured through the typed wire format, so the
// overhead column is bits on the wire, not a model.  At rate 0 the channel
// is a strict passthrough and the run is bit-identical to one without it
// (checked here and by tests); from there the overhead must grow
// monotonically with the drop rate (validated by tools/check_report.py in
// the chaos-smoke CI job via the per-rate gauges).
//
// The rate points replay the same recorded script as independent seeded
// runs in a parallel sweep; the table and per-rate gauges are emitted
// afterwards in rate order (gauges land in per-point registries and merge
// back deterministically, so reports match at any --jobs value).

#include <vector>

#include "bench_util.hpp"
#include "core/distributed_controller.hpp"
#include "sim/channel.hpp"
#include "sim/fault.hpp"
#include "sim/watchdog.hpp"
#include "workload/churn.hpp"
#include "workload/script.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct Sample {
  double rate = 0.0;
  sim::NetStats net;
  sim::ChannelStats chan;
  sim::FaultStats faults;
};

Sample run_at(double drop_rate, const workload::Script& script,
              std::uint64_t seed) {
  Sample out;
  out.rate = drop_rate;
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform,
                                          seed + 66));
  // DropFault(0.0) is fault-free, so the rate-0 row exercises the
  // passthrough: the measured baseline, not a degenerate ARQ run.
  net.set_fault_policy(
      std::make_unique<sim::DropFault>(Rng(seed + 22), drop_rate));
  net.enable_reliability();
  sim::Watchdog wd(queue, 50'000'000);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 64, rng);
  DistributedController::Options opts;
  opts.track_domains = false;
  opts.watchdog = &wd;
  DistributedController ctrl(net, t, Params(2000, 200, 4096), opts);
  DistributedSyncFacade facade(queue, ctrl);
  workload::replay(script, facade, t);
  queue.run();
  wd.verify_idle();
  out.net = net.stats();
  out.chan = net.channel()->stats();
  out.faults = net.fault_stats();
  bench::Run::note_net(out.net);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp17", argc, argv);
  const std::uint64_t seed = run.base_seed(7);
  banner("EXP17: reliability overhead vs transport drop rate");

  // One recorded workload, replayed identically at every rate.
  Rng r(seed);
  tree::DynamicTree recorder;
  workload::build(recorder, workload::Shape::kRandomAttach, 64, r);
  workload::ChurnGenerator churn(workload::ChurnModel::kInternalChurn,
                                 Rng(seed + 4));
  const workload::Script script =
      workload::Script::record(recorder, churn, 400);
  const std::vector<double> rates = {0.0, 0.01, 0.03, 0.05, 0.1, 0.2};
  run.param("requests", static_cast<std::uint64_t>(400));
  run.param("nodes", static_cast<std::uint64_t>(64));
  run.param("rates", static_cast<std::uint64_t>(rates.size()));

  std::vector<Sample> samples(rates.size());
  parallel_sweep(run, samples.size(), [&](std::size_t i) {
    samples[i] = run_at(rates[i], script, seed);
  });

  Table tab({"drop rate", "messages", "total bits", "data frames",
             "retransmits", "acks", "dups suppressed", "drops injected",
             "overhead"});
  const std::uint64_t base_bits = samples[0].net.total_bits;
  for (std::size_t idx = 0; idx < samples.size(); ++idx) {
    const Sample& s = samples[idx];
    const double overhead =
        static_cast<double>(s.net.total_bits) /
        static_cast<double>(base_bits == 0 ? 1 : base_bits);
    tab.row({fp(s.rate, 2), num(s.net.messages), num(s.net.total_bits),
             num(s.chan.data_frames), num(s.chan.retransmits),
             num(s.chan.acks), num(s.chan.duplicates_suppressed),
             num(s.faults.drops), fp(overhead, 3) + "x"});
    // Per-rate gauges: the chaos-smoke CI job checks the overhead curve is
    // monotone in the drop rate from exactly these.
    const std::string prefix = "exp17.rate." + std::to_string(idx);
    obs::gauge(prefix + ".drop_rate", s.rate);
    obs::gauge(prefix + ".total_bits",
               static_cast<double>(s.net.total_bits));
    obs::gauge(prefix + ".messages", static_cast<double>(s.net.messages));
    obs::gauge(prefix + ".retransmits",
               static_cast<double>(s.chan.retransmits));
  }
  tab.print();
  std::printf(
      "\nshape check: the rate-0 row is the bit-identical passthrough "
      "baseline (zero data frames, zero acks); total bits then grow "
      "monotonically with the drop rate — dropped transmissions are still "
      "charged, and every repair (retransmission + ack + frame header) is "
      "measured wire traffic, the price of the reliable links the paper's "
      "lemmas assume.\n");
  return 0;
}

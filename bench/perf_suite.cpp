// Simulator-throughput suite: the repo's perf-regression instrument.
//
// Every EXP bench validates a *measured-scaling* claim, so the event loop
// and the transport underneath them are the instrument the reproduction
// stands on.  This binary pins that instrument's speed: it drives a
// canonical workload mix (centralized controller, distributed controller
// under open-loop churn, distributed controller over a chaos-faulted
// transport with the reliable channel engaged, and a raw send/deliver
// chain) and reports
//
//   perf.events_per_sec        event-loop throughput on the distributed mix
//   perf.sends_per_sec         network sends/sec on the same mix
//   perf.allocs_per_event      operator-new calls per fired event (whole mix,
//                              includes per-request controller state)
//   perf.sendloop.allocs_per_event
//                              allocations per event on the *pure*
//                              send/deliver chain — the steady-state hot
//                              path, expected 0 in Release builds
//   perf.ns_per_event_p50/p99  per-event latency percentiles (sampled over
//                              2048-event slices of the distributed phase)
//
// Run with --metrics-out=<path> to emit the run-report JSON; the committed
// baseline lives at BENCH_perf.json and tools/check_bench.py compares a
// fresh run against it (CI perf-smoke job).  Refresh instructions are in
// docs/PERFORMANCE.md.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "bench_util.hpp"
#include "core/centralized_controller.hpp"
#include "core/distributed_controller.hpp"
#include "sim/channel.hpp"
#include "sim/fault.hpp"
#include "sim/watchdog.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/shapes.hpp"

// ---- operator-new counter ---------------------------------------------------
//
// Global replacement for this binary only: every heap allocation, from any
// layer, bumps one relaxed atomic.  The simulation is single-threaded; the
// atomic only guards against library-internal threads.

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dyncon;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---- batching knobs + frame/cache economics ---------------------------------
//
// --no-batch / --batch-window=N flip the PR-9 hot-path layers everywhere at
// once (delivery coalescing, encode cache reuse, inline grant waves).  Per-
// message accounting is bit-identical either way — that is the acceptance
// contract — so the registry families never move; the frame/cache economics
// live in BatchStats/ResumeStats and surface only as the perf.batch.* report
// family below.

struct BatchKnobs {
  bool on = true;
  std::uint32_t window = 16;
};
BatchKnobs g_knobs;

sim::BatchStats g_batch;
std::uint64_t g_cache_hits = 0;
std::uint64_t g_cache_lookups = 0;
core::DistributedController::ResumeStats g_resume;

void apply_knobs(sim::Network& net) {
  net.set_batching(g_knobs.on);
  net.set_batch_window(g_knobs.window);
}

/// Fold one serial phase's network economics into the run totals.  The
/// parallel phase only *applies* the knobs: its runs execute on pool
/// workers, and these accumulators are deliberately unsynchronized.
void collect(const sim::Network& net) {
  g_batch.merge(net.batch_stats());
  g_cache_hits += net.encode_cache().hits();
  g_cache_lookups += net.encode_cache().lookups();
}

void collect(const core::DistributedController& ctrl) {
  const auto& rs = ctrl.resume_stats();
  g_resume.inlined += rs.inlined;
  g_resume.scheduled += rs.scheduled;
  g_resume.max_chain = std::max(g_resume.max_chain, rs.max_chain);
}

/// One churn-or-event proposal: 50/50 events and leaf-adds, subjects drawn
/// from the *initial* node set (grow-only churn keeps them alive forever).
/// Deliberately O(1) — workload::random_node's alive_nodes() scan is O(n)
/// and would dominate the measurement this binary exists to take.
core::RequestSpec propose(const std::vector<NodeId>& subjects, Rng& rng) {
  const NodeId v = subjects[rng.index(subjects.size())];
  return {rng.chance(0.5) ? core::RequestSpec::Type::kEvent
                          : core::RequestSpec::Type::kAddLeaf,
          v};
}

struct PhaseResult {
  std::uint64_t events = 0;
  std::uint64_t sends = 0;
  std::uint64_t allocs = 0;
  double secs = 0;

  [[nodiscard]] double events_per_sec() const {
    return secs > 0 ? static_cast<double>(events) / secs : 0.0;
  }
  [[nodiscard]] double sends_per_sec() const {
    return secs > 0 ? static_cast<double>(sends) / secs : 0.0;
  }
  [[nodiscard]] double allocs_per_event() const {
    return events > 0
               ? static_cast<double>(allocs) / static_cast<double>(events)
               : 0.0;
  }
};

void report_phase(bench::Run& run, const std::string& prefix,
                  const PhaseResult& r) {
  run.registry().set_gauge("perf." + prefix + ".events_per_sec",
                           r.events_per_sec());
  run.registry().set_gauge("perf." + prefix + ".sends_per_sec",
                           r.sends_per_sec());
  run.registry().set_gauge("perf." + prefix + ".allocs_per_event",
                           r.allocs_per_event());
  run.registry().set("perf." + prefix + ".events", r.events);
}

// ---- phase A: centralized controller (no event loop) ------------------------

PhaseResult phase_centralized(std::uint64_t n, std::uint64_t requests) {
  Rng rng(5);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n, rng);
  core::CentralizedController::Options opts;
  opts.track_domains = false;
  core::CentralizedController ctrl(
      t, core::Params(1u << 30, 1u << 29, 4 * n + requests), opts);
  const auto nodes = t.alive_nodes();
  PhaseResult r;
  const std::uint64_t a0 = allocs_now();
  const auto t0 = Clock::now();
  std::uint64_t granted = 0;
  for (std::uint64_t i = 0; i < requests; ++i) {
    granted +=
        ctrl.request_event(nodes[i % nodes.size()]).outcome ==
        core::Outcome::kGranted;
  }
  r.secs = seconds_since(t0);
  r.allocs = allocs_now() - a0;
  r.events = requests;  // synchronous: one "event" per answered request
  if (granted == 0) std::abort();  // budget sized so this cannot happen
  return r;
}

// ---- phase B: distributed controller, open-loop churn, timed slices ---------

PhaseResult phase_distributed(std::uint64_t n, std::uint64_t steps,
                              Percentiles& slice_ns) {
  Rng rng(7);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  apply_knobs(net);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n, rng);
  core::DistributedController::Options opts;
  opts.track_domains = false;
  opts.batch_grants = g_knobs.on;
  // Budget sized to the run (M ~ steps, W = M/5): with an effectively
  // infinite M every node ends up holding a fat permit stock and grants
  // locally without a single message — the network would go quiet after
  // warmup.  A scarce budget keeps permits migrating (taxi hops) for the
  // whole run, which is the traffic this instrument is supposed to time.
  core::DistributedController ctrl(
      net, t,
      core::Params(steps, steps / 5, 4 * n + 4 * steps), opts);
  // Grow-only churn (leaf adds): removal churn is only supported
  // closed-loop (a remove racing an in-flight request is rejected at
  // submit, not mid-protocol), and this phase is deliberately open-loop
  // to saturate the event queue.
  const std::vector<NodeId> subjects = t.alive_nodes();
  std::uint64_t answered = 0;
  // Open-loop: every submission is scheduled up front at its arrival time
  // (geometric gaps, mean 2), so the hot loop below is *only* the event
  // loop.
  SimTime when = 0;
  Rng arrivals(13);
  Rng mix(17);
  struct Ctx {
    core::DistributedController& ctrl;
    const std::vector<NodeId>& subjects;
    Rng& mix;
    std::uint64_t& answered;
  } ctx{ctrl, subjects, mix, answered};
  for (std::uint64_t i = 0; i < steps; ++i) {
    when += 1 + arrivals.uniform(0, 2);
    queue.schedule_at(when, [&ctx] {
      ctx.ctrl.submit(propose(ctx.subjects, ctx.mix),
                      [&ctx](const core::Result&) { ++ctx.answered; });
    });
  }
  PhaseResult r;
  const std::uint64_t a0 = allocs_now();
  const std::uint64_t e0 = queue.events_fired();
  const auto t0 = Clock::now();
  // Timed 2048-event slices: per-event percentiles without a clock read
  // per event.
  constexpr std::uint64_t kSlice = 2048;
  while (!queue.empty()) {
    const auto s0 = Clock::now();
    const std::uint64_t fired = queue.run(kSlice);
    const double ns = std::chrono::duration<double, std::nano>(
                          Clock::now() - s0)
                          .count();
    if (fired == kSlice) {  // ignore the ragged final slice
      slice_ns.add(ns / static_cast<double>(fired));
    }
  }
  r.secs = seconds_since(t0);
  r.allocs = allocs_now() - a0;
  r.events = queue.events_fired() - e0;
  r.sends = net.stats().messages;
  if (answered != steps) std::abort();  // every request must be answered
  bench::Run::note_net(net.stats());
  collect(net);
  collect(ctrl);
  return r;
}

// ---- phase C: chaos-faulted transport + reliable channel --------------------

PhaseResult phase_faulty(std::uint64_t n, std::uint64_t steps) {
  Rng rng(19);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform, 23));
  apply_knobs(net);
  net.set_fault_policy(sim::make_fault(sim::FaultKind::kChaos, 29));
  net.enable_reliability();
  sim::Watchdog wd(queue, 2'000'000);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n, rng);
  core::DistributedController::Options opts;
  opts.track_domains = false;
  opts.batch_grants = g_knobs.on;
  opts.watchdog = &wd;
  // Unlike phase B this keeps the effectively-infinite budget: under a
  // scarce budget + chaos faults the controller cannot guarantee request
  // liveness (the watchdog rightly fires), and this phase's job is to time
  // the fault/ARQ machinery, not to stress permit scarcity.
  core::DistributedController ctrl(
      net, t, core::Params(1u << 30, 1u << 29, 4 * n + 4 * steps), opts);
  const std::vector<NodeId> subjects = t.alive_nodes();
  std::uint64_t answered = 0;
  SimTime when = 0;
  Rng arrivals(37);
  Rng mix(41);
  struct Ctx {
    core::DistributedController& ctrl;
    const std::vector<NodeId>& subjects;
    Rng& mix;
    std::uint64_t& answered;
  } ctx{ctrl, subjects, mix, answered};
  for (std::uint64_t i = 0; i < steps; ++i) {
    when += 1 + arrivals.uniform(0, 6);
    queue.schedule_at(when, [&ctx] {
      ctx.ctrl.submit(propose(ctx.subjects, ctx.mix),
                      [&ctx](const core::Result&) { ++ctx.answered; });
    });
  }
  PhaseResult r;
  const std::uint64_t a0 = allocs_now();
  const std::uint64_t e0 = queue.events_fired();
  const auto t0 = Clock::now();
  queue.run();
  r.secs = seconds_since(t0);
  r.allocs = allocs_now() - a0;
  r.events = queue.events_fired() - e0;
  r.sends = net.stats().messages;
  wd.verify_idle();
  if (answered != steps) std::abort();
  bench::Run::note_net(net.stats());
  collect(net);
  collect(ctrl);
  return r;
}

// ---- phase D: raw send/deliver chain (the steady-state hot path) ------------

PhaseResult phase_sendloop(std::uint64_t sends) {
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  apply_knobs(net);
  const sim::Message msg =
      sim::Message::agent_hop(12345, 17, 9, 4, 3, true);
  std::uint64_t left = sends;
  struct Ctx {
    sim::Network& net;
    const sim::Message& msg;
    std::uint64_t& left;
    void fire() {
      if (--left == 0) return;
      net.send(0, 1, msg, [this] { fire(); });
    }
  } ctx{net, msg, left};
  // Warm up: let every arena (event heap, metrics slots) reach steady
  // state before counting.
  net.send(0, 1, msg, [&ctx] { ctx.fire(); });
  for (int i = 0; i < 64 && !queue.empty(); ++i) queue.step();
  PhaseResult r;
  const std::uint64_t a0 = allocs_now();
  const std::uint64_t e0 = queue.events_fired();
  const auto t0 = Clock::now();
  queue.run();
  r.secs = seconds_since(t0);
  r.allocs = allocs_now() - a0;
  r.events = queue.events_fired() - e0;
  r.sends = net.stats().messages;
  bench::Run::note_net(net.stats());
  collect(net);
  return r;
}

// ---- phase E: parallel run-engine scaling -----------------------------------
//
// The same batch of independent seeded mini-runs (distributed controller,
// open-loop arrivals) executed through util::parallel_for_runs at growing
// worker counts.  Each run owns its queue/network/tree — shared-nothing —
// so events/sec should scale with workers up to the core count.  The
// per-run event totals are summed and compared across batches: a mismatch
// means scheduling leaked into the simulation and the binary aborts.

PhaseResult phase_parallel(unsigned jobs, std::uint64_t runs,
                           std::uint64_t n, std::uint64_t steps) {
  std::vector<std::uint64_t> events(runs, 0);
  std::vector<std::uint64_t> sends(runs, 0);
  const auto t0 = Clock::now();
  util::parallel_for_runs(
      runs, jobs, /*base_seed=*/97,
      [&](std::uint64_t idx, Rng rng) {
        sim::EventQueue queue;
        sim::Network net(queue,
                         sim::make_delay(sim::DelayKind::kFixed, 1));
        apply_knobs(net);  // reads only; the collect() fold stays serial
        tree::DynamicTree t;
        workload::build(t, workload::Shape::kRandomAttach, n, rng);
        core::DistributedController::Options opts;
        opts.track_domains = false;
        opts.batch_grants = g_knobs.on;
        core::DistributedController ctrl(
            net, t, core::Params(steps, steps / 5, 4 * n + 4 * steps),
            opts);
        const std::vector<NodeId> subjects = t.alive_nodes();
        std::uint64_t answered = 0;
        SimTime when = 0;
        struct Ctx {
          core::DistributedController& ctrl;
          const std::vector<NodeId>& subjects;
          Rng& mix;
          std::uint64_t& answered;
        } ctx{ctrl, subjects, rng, answered};
        for (std::uint64_t i = 0; i < steps; ++i) {
          when += 1 + rng.uniform(0, 2);
          queue.schedule_at(when, [&ctx] {
            ctx.ctrl.submit(propose(ctx.subjects, ctx.mix),
                            [&ctx](const core::Result&) {
                              ++ctx.answered;
                            });
          });
        }
        queue.run();
        if (answered != steps) std::abort();
        events[idx] = queue.events_fired();
        sends[idx] = net.stats().messages;
        bench::Run::note_net(net.stats());
      });
  PhaseResult r;
  r.secs = seconds_since(t0);
  for (std::uint64_t i = 0; i < runs; ++i) {
    r.events += events[i];
    r.sends += sends[i];
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("perf_suite", argc, argv);
  bench::banner("perf_suite — simulator throughput + allocation trajectory");

  // CI smoke: ~8x shorter.
  const std::uint64_t scale =
      util::flag_present(argc, argv, "--quick") ? 8 : 1;
  run.param("scale_divisor", scale);

  // Batching knobs (EXP18/EXP19 flags; docs/EXPERIMENTS.md).  The workload
  // counters below must be byte-identical across every knob setting — CI
  // diffs a batched report against a --no-batch one to prove it.
  g_knobs.on = !util::flag_present(argc, argv, "--no-batch");
  g_knobs.window = static_cast<std::uint32_t>(
      util::flag_u64(argc, argv, "--batch-window", 16));
  run.param("batching", std::uint64_t{g_knobs.on ? 1u : 0u});
  run.param("batch_window", std::uint64_t{g_knobs.window});

  const PhaseResult cen = phase_centralized(4096, 2'000'000 / scale);
  Percentiles slice_ns;
  const PhaseResult dist = phase_distributed(1024, 200'000 / scale, slice_ns);
  const PhaseResult faulty = phase_faulty(192, 20'000 / scale);
  const PhaseResult loop = phase_sendloop(2'000'000 / scale);

  bench::Table table({"phase", "events", "sends", "events/s", "sends/s",
                      "allocs/event", "secs"});
  auto row = [&table](const char* name, const PhaseResult& r) {
    table.row({name, bench::num(r.events), bench::num(r.sends),
               bench::fp(r.events_per_sec(), 0), bench::fp(r.sends_per_sec(), 0),
               bench::fp(r.allocs_per_event(), 4), bench::fp(r.secs, 3)});
  };
  row("centralized", cen);
  row("distributed", dist);
  row("faulty+channel", faulty);
  row("sendloop", loop);
  table.print();

  // Phase E: the same 8-run batch through the pool at growing worker
  // counts.  Totals must match across batches (determinism check); on a
  // single hardware thread the speedup column simply reads ~1.0.
  const std::uint64_t pruns = 8;
  const unsigned hw = dyncon::util::ThreadPool::hardware_jobs();
  std::vector<PhaseResult> batches;
  bench::Table ptable({"jobs", "events", "events/s", "speedup vs j1",
                       "secs"});
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    const PhaseResult pr =
        phase_parallel(jobs, pruns, 256, 12'500 / scale);
    if (!batches.empty() &&
        (pr.events != batches.front().events ||
         pr.sends != batches.front().sends)) {
      std::fprintf(stderr,
                   "parallel batch at jobs=%u diverged from jobs=1 "
                   "(events %llu vs %llu)\n",
                   jobs, static_cast<unsigned long long>(pr.events),
                   static_cast<unsigned long long>(
                       batches.front().events));
      std::abort();
    }
    ptable.row({bench::num(jobs), bench::num(pr.events),
                bench::fp(pr.events_per_sec(), 0),
                bench::fp(batches.empty()
                              ? 1.0
                              : pr.events_per_sec() /
                                    batches.front().events_per_sec(),
                          2),
                bench::fp(pr.secs, 3)});
    batches.push_back(pr);
  }
  std::printf("\n  parallel run-engine scaling (%llu runs/batch, %u "
              "hardware threads):\n",
              static_cast<unsigned long long>(pruns), hw);
  ptable.print();

  const double p50 = slice_ns.at(0.50);
  const double p99 = slice_ns.at(0.99);
  std::printf("\n  distributed ns/event: p50=%.1f p99=%.1f (%zu slices)\n",
              p50, p99, slice_ns.count());
  std::printf("  sendloop allocations/event: %.6f (%s)\n",
              loop.allocs_per_event(),
#ifdef NDEBUG
              "release: steady-state send/deliver path"
#else
              "debug build: encode+roundtrip allocates by design"
#endif
  );

  report_phase(run, "centralized", cen);
  report_phase(run, "distributed", dist);
  report_phase(run, "faulty", faulty);
  report_phase(run, "sendloop", loop);
  // Headline gauges (the ones tools/check_bench.py gates on).
  run.registry().set_gauge("perf.events_per_sec", dist.events_per_sec());
  run.registry().set_gauge("perf.sends_per_sec", dist.sends_per_sec());
  run.registry().set_gauge("perf.allocs_per_event", dist.allocs_per_event());
  run.registry().set_gauge("perf.ns_per_event_p50", p50);
  run.registry().set_gauge("perf.ns_per_event_p99", p99);
  run.registry().set("perf.events",
                     cen.events + dist.events + faulty.events + loop.events);
  run.registry().set("perf.sends", dist.sends + faulty.sends + loop.sends);
  // Parallel-scaling family (perf.parallel.*): throughput gauges are
  // machine-dependent and excluded from the cross-machine baseline diff;
  // check_bench.py instead gates on the within-report speedups, and the
  // event counters stay exact-match because batches are deterministic.
  for (std::size_t b = 0; b < batches.size(); ++b) {
    run.registry().set_gauge(
        "perf.parallel.events_per_sec_j" + std::to_string(1u << b),
        batches[b].events_per_sec());
  }
  run.registry().set_gauge("perf.parallel.speedup_j4",
                           batches[2].events_per_sec() /
                               batches[0].events_per_sec());
  run.registry().set_gauge("perf.parallel.hw_threads",
                           static_cast<double>(hw));
  run.registry().set("perf.parallel.events", batches.front().events);
  run.registry().set("perf.parallel.runs",
                     pruns * static_cast<std::uint64_t>(batches.size()));

  // Batching family (perf.batch.*): frame/cache/resume economics of the
  // serial phases (B, C, D).  All gauges — their values follow the
  // --no-batch / --batch-window knobs, so check_bench.py excludes them from
  // the cross-report baseline diff (like perf.parallel.*); check_report.py
  // instead validates their internal arithmetic (frames <= batched msgs,
  // hits <= lookups, frame-size bucket conservation).
  {
    auto g = [&run](const std::string& name, double v) {
      run.registry().set_gauge("perf.batch." + name, v);
    };
    g("frames", static_cast<double>(g_batch.frames));
    g("batched_msgs", static_cast<double>(g_batch.batched_msgs));
    g("frame_bits", static_cast<double>(g_batch.frame_bits));
    g("member_bits", static_cast<double>(g_batch.member_bits));
    for (std::size_t w = 0; w < g_batch.msgs_per_frame.size(); ++w) {
      if (g_batch.msgs_per_frame[w] == 0) continue;
      g("msgs_per_frame_w" + std::to_string(w),
        static_cast<double>(g_batch.msgs_per_frame[w]));
    }
    g("cache_hits", static_cast<double>(g_cache_hits));
    g("cache_lookups", static_cast<double>(g_cache_lookups));
    g("cache_hit_rate",
      g_cache_lookups > 0 ? static_cast<double>(g_cache_hits) /
                                static_cast<double>(g_cache_lookups)
                          : 0.0);
    g("resume_inlined", static_cast<double>(g_resume.inlined));
    g("resume_scheduled", static_cast<double>(g_resume.scheduled));
    g("resume_max_chain", static_cast<double>(g_resume.max_chain));
    std::printf(
        "\n  batching (%s, window %u): %llu frames / %llu msgs coalesced, "
        "%llu -> %llu bits; cache %llu/%llu hits; %llu resumes inlined "
        "(max chain %llu)\n",
        g_knobs.on ? "on" : "off", g_knobs.window,
        static_cast<unsigned long long>(g_batch.frames),
        static_cast<unsigned long long>(g_batch.batched_msgs),
        static_cast<unsigned long long>(g_batch.member_bits),
        static_cast<unsigned long long>(g_batch.frame_bits),
        static_cast<unsigned long long>(g_cache_hits),
        static_cast<unsigned long long>(g_cache_lookups),
        static_cast<unsigned long long>(g_resume.inlined),
        static_cast<unsigned long long>(g_resume.max_chain));
  }
  return 0;
}

// EXP3 — Head-to-head against the paper's reference points (§1, §1.4):
// the trivial root-trip controller (Omega(n) per request) and the AAPS [4]
// bin-hierarchy controller (grow-only trees; same asymptotics as ours).
//
// Workload: grow-only leaf insertions (the only model all three support),
// random attachment.  Expected shape: trivial grows ~quadratically in total
// cost, AAPS and ours grow ~N polylog N; AAPS has the smaller constant at
// these sizes (its level-0 bins sit at every node, our psi constant is
// large), ours closes the gap as N grows — and only ours also supports
// deletions and internal insertions (EXP5).

#include "bench_util.hpp"
#include "core/aaps_controller.hpp"
#include "core/iterated_controller.hpp"
#include "core/trivial_controller.hpp"
#include "util/stats.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

/// Grow a tree from 1 node to n by leaf insertions through `ctrl`.
template <typename Ctrl>
std::uint64_t grow_to(Ctrl& ctrl, tree::DynamicTree& t, std::uint64_t n,
                      Rng& rng) {
  while (t.size() < n) {
    const auto nodes = t.alive_nodes();
    ctrl.request_add_leaf(nodes[rng.index(nodes.size())]);
  }
  return ctrl.cost();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp3", argc, argv);
  banner("EXP3: ours vs AAPS [4] vs trivial controller (grow-only)");

  Table tab({"N", "trivial", "AAPS", "ours", "trivial/ours", "ours/AAPS"});
  std::vector<double> ns, ct, ca, co;
  for (std::uint64_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    const std::uint64_t budget = 16 * n;  // headroom over bin stranding

    Rng r1(5);
    tree::DynamicTree t1;
    TrivialController trivial(t1, budget);
    const std::uint64_t cost_t = grow_to(trivial, t1, n, r1);

    Rng r2(5);
    tree::DynamicTree t2;
    AAPSController aaps(t2, budget, budget / 2, 2 * n);
    const std::uint64_t cost_a = grow_to(aaps, t2, n, r2);

    Rng r3(5);
    tree::DynamicTree t3;
    IteratedController::Options opts;
    opts.track_domains = false;
    IteratedController ours(t3, budget, budget / 2, 2 * n, opts);
    const std::uint64_t cost_o = grow_to(ours, t3, n, r3);

    tab.row({num(n), num(cost_t), num(cost_a), num(cost_o),
             fp(static_cast<double>(cost_t) / static_cast<double>(cost_o)),
             fp(static_cast<double>(cost_o) / static_cast<double>(cost_a))});
    ns.push_back(static_cast<double>(n));
    ct.push_back(static_cast<double>(cost_t));
    ca.push_back(static_cast<double>(cost_a));
    co.push_back(static_cast<double>(cost_o));
  }
  tab.print();
  std::printf("\nlog-log slopes:  trivial=%.2f  AAPS=%.2f  ours=%.2f\n",
              loglog_slope(ns, ct), loglog_slope(ns, ca),
              loglog_slope(ns, co));
  std::printf("shape check: trivial ~> 1.3 (deeper trees make each trip "
              "longer), AAPS/ours ~1 (amortized); only ours supports the "
              "full dynamic model.\n");
  return 0;
}

// EXP3 — Head-to-head against the paper's reference points (§1, §1.4):
// the trivial root-trip controller (Omega(n) per request) and the AAPS [4]
// bin-hierarchy controller (grow-only trees; same asymptotics as ours).
//
// Workload: grow-only leaf insertions (the only model all three support),
// random attachment.  Expected shape: trivial grows ~quadratically in total
// cost, AAPS and ours grow ~N polylog N; AAPS has the smaller constant at
// these sizes (its level-0 bins sit at every node, our psi constant is
// large), ours closes the gap as N grows — and only ours also supports
// deletions and internal insertions (EXP5).

#include "bench_util.hpp"
#include "core/aaps_controller.hpp"
#include "core/iterated_controller.hpp"
#include "core/trivial_controller.hpp"
#include "util/stats.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

/// Grow a tree from 1 node to n by leaf insertions through `ctrl`.
template <typename Ctrl>
std::uint64_t grow_to(Ctrl& ctrl, tree::DynamicTree& t, std::uint64_t n,
                      Rng& rng) {
  while (t.size() < n) {
    const auto nodes = t.alive_nodes();
    ctrl.request_add_leaf(nodes[rng.index(nodes.size())]);
  }
  return ctrl.cost();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp3", argc, argv);
  const std::uint64_t seed = run.base_seed(5);
  banner("EXP3: ours vs AAPS [4] vs trivial controller (grow-only)");

  // Parallel sweep over N: each point grows the three controllers from the
  // same seed; rows print after, in point order (--jobs invariant).
  const std::vector<std::uint64_t> sizes = {256, 512, 1024, 2048, 4096};
  struct Point {
    std::uint64_t trivial = 0, aaps = 0, ours = 0;
  };
  std::vector<Point> points(sizes.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    const std::uint64_t n = sizes[i];
    const std::uint64_t budget = 16 * n;  // headroom over bin stranding

    Rng r1(seed);
    tree::DynamicTree t1;
    TrivialController trivial(t1, budget);
    points[i].trivial = grow_to(trivial, t1, n, r1);

    Rng r2(seed);
    tree::DynamicTree t2;
    AAPSController aaps(t2, budget, budget / 2, 2 * n);
    points[i].aaps = grow_to(aaps, t2, n, r2);

    Rng r3(seed);
    tree::DynamicTree t3;
    IteratedController::Options opts;
    opts.track_domains = false;
    IteratedController ours(t3, budget, budget / 2, 2 * n, opts);
    points[i].ours = grow_to(ours, t3, n, r3);
  });

  Table tab({"N", "trivial", "AAPS", "ours", "trivial/ours", "ours/AAPS"});
  std::vector<double> ns, ct, ca, co;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Point& p = points[i];
    tab.row({num(sizes[i]), num(p.trivial), num(p.aaps), num(p.ours),
             fp(static_cast<double>(p.trivial) /
                static_cast<double>(p.ours)),
             fp(static_cast<double>(p.ours) /
                static_cast<double>(p.aaps))});
    ns.push_back(static_cast<double>(sizes[i]));
    ct.push_back(static_cast<double>(p.trivial));
    ca.push_back(static_cast<double>(p.aaps));
    co.push_back(static_cast<double>(p.ours));
  }
  tab.print();
  std::printf("\nlog-log slopes:  trivial=%.2f  AAPS=%.2f  ours=%.2f\n",
              loglog_slope(ns, ct), loglog_slope(ns, ca),
              loglog_slope(ns, co));
  std::printf("shape check: trivial ~> 1.3 (deeper trees make each trip "
              "longer), AAPS/ours ~1 (amortized); only ours supports the "
              "full dynamic model.\n");
  return 0;
}

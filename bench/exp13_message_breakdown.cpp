// EXP13 — Where the message budget goes.
//
// The paper's bounds decompose into agent walks (the dominant term),
// the one-time reject flood (O(U)), iteration-control broadcast/upcasts,
// and graceful-deletion data handoffs.  This bench runs the distributed
// iterated controller under each churn model and reports the measured
// per-kind breakdown — counts *and* max encoded bits per kind against the
// c*log U envelope — validating that the side terms stay side terms and
// that no kind's messages outgrow the Lemma 4.5 budget.  Strict mode is
// armed, so an oversized message aborts the bench instead of skewing a
// column.
//
// Churn models are independent seeded runs executed as a parallel sweep.

#include "bench_util.hpp"
#include "core/distributed_iterated.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct Point {
  std::uint64_t requests = 0;
  sim::NetStats st;
};

Point measure(workload::ChurnModel model, std::uint64_t U,
              std::uint64_t seed) {
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform,
                                          seed + 2));
  net.set_strict_max_bits(sim::size_envelope_bits(U));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, 128, rng);
  const std::uint64_t M = 600;
  DistributedIterated::Options opts;
  opts.track_domains = false;
  DistributedIterated ctrl(net, t, M, /*W=*/1, U, opts);
  workload::ChurnGenerator churn(model, Rng(seed + 8));
  Point out;
  for (int i = 0; i < 900; ++i) {
    if (t.size() < 4) break;
    ++out.requests;
    ctrl.submit(churn.next(t), [](const Result&) {});
    if (i % 8 == 7) queue.run();
  }
  queue.run();
  out.st = net.stats();
  bench::Run::note_net(out.st);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp13", argc, argv);
  const std::uint64_t seed = run.base_seed(71);
  banner("EXP13: message-kind breakdown of the distributed controller");

  const std::uint64_t U = 4096;
  const auto models = workload::all_churn_models();
  std::vector<Point> points(models.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    points[i] = measure(models[i], U, seed);
  });

  Table tab({"churn", "requests", "total msgs", "agent%", "reject%",
             "control%", "datamove%", "agent max", "control max",
             "datamove max", "envelope"});
  for (std::size_t i = 0; i < models.size(); ++i) {
    const Point& p = points[i];
    const double total = static_cast<double>(p.st.messages);
    auto pct = [&](sim::MsgKind k) {
      return fp(100.0 * static_cast<double>(p.st.kind(k)) / total, 1);
    };
    tab.row({workload::churn_name(models[i]), num(p.requests),
             num(p.st.messages), pct(sim::MsgKind::kAgent),
             pct(sim::MsgKind::kReject), pct(sim::MsgKind::kControl),
             pct(sim::MsgKind::kDataMove),
             num(p.st.kind_max_bits(sim::MsgKind::kAgent)),
             num(p.st.kind_max_bits(sim::MsgKind::kControl)),
             num(p.st.kind_max_bits(sim::MsgKind::kDataMove)),
             num(sim::size_envelope_bits(U))});
  }
  tab.print();
  std::printf("\nshape check: agent hops dominate; the reject flood is a "
              "one-time O(n) blip; control and datamove stay single-digit "
              "percentages — the side terms of Thm. 4.7's bound — and every "
              "kind's max measured bits sits under the c*log U envelope "
              "(strict mode would have aborted otherwise).\n");
  return 0;
}

// EXP10 — Concurrency and the locking discipline (§4, Lemmas 4.2-4.5).
//
// The paper proves the distributed controller by serializing concurrent
// executions; message complexity must therefore be (a) schedule-independent
// and (b) essentially unchanged by concurrency.  We issue the same request
// mix fully serialized vs in bursts of growing width, across delay
// adversaries, and report messages per request plus the end-to-end
// simulated-time speedup concurrency buys.
//
// The (delay, burst) grid runs as a parallel sweep; each point is an
// independent seeded simulation, and the burst=1 point doubles as the
// serial baseline for its delay adversary.

#include "bench_util.hpp"
#include "core/distributed_controller.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct RunStats {
  std::uint64_t messages = 0;
  std::uint64_t granted = 0;
  SimTime makespan = 0;
};

RunStats run(sim::DelayKind kind, std::uint64_t burst, std::uint64_t seed) {
  const std::uint64_t n = 512, reqs = 256;
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(kind, seed + 6));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kCaterpillar, n, rng);
  DistributedController::Options opts;
  opts.track_domains = false;
  DistributedController ctrl(net, t, Params(reqs, reqs / 2, 2 * n), opts);
  const auto nodes = t.alive_nodes();
  std::uint64_t granted = 0;
  Rng pick(seed + 8);
  std::uint64_t remaining = reqs;
  while (remaining > 0) {
    const std::uint64_t k = std::min(burst, remaining);
    remaining -= k;
    for (std::uint64_t i = 0; i < k; ++i) {
      ctrl.submit_event(nodes[pick.index(nodes.size())],
                        [&granted](const Result& r) {
                          granted += r.granted();
                        });
    }
    queue.run();
  }
  bench::Run::note_net(net.stats());
  return {ctrl.messages_used(), granted, queue.now()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run report_run("exp10", argc, argv);
  const std::uint64_t seed = report_run.base_seed(53);
  banner("EXP10: concurrency, locks and schedule independence");

  const std::vector<sim::DelayKind> kinds = {
      sim::DelayKind::kFixed, sim::DelayKind::kUniform,
      sim::DelayKind::kBiased};
  const std::vector<std::uint64_t> bursts = {1, 4, 16, 64, 256};

  std::vector<RunStats> points(kinds.size() * bursts.size());
  parallel_sweep(report_run, points.size(), [&](std::size_t i) {
    points[i] = run(kinds[i / bursts.size()], bursts[i % bursts.size()],
                    seed);
  });

  for (std::size_t k = 0; k < kinds.size(); ++k) {
    subhead(std::string("delay adversary = ") +
            sim::delay_kind_name(kinds[k]));
    Table tab({"burst width", "granted", "messages", "msgs/request",
               "makespan (ticks)", "speedup vs serial"});
    // burst=1 is the first point of this adversary's row block.
    const RunStats& serial = points[k * bursts.size()];
    for (std::size_t j = 0; j < bursts.size(); ++j) {
      const RunStats& s = points[k * bursts.size() + j];
      tab.row({num(bursts[j]), num(s.granted), num(s.messages),
               fp(static_cast<double>(s.messages) / 256.0, 1),
               num(s.makespan),
               fp(static_cast<double>(serial.makespan) /
                  static_cast<double>(std::max<SimTime>(s.makespan, 1)))});
    }
    tab.print();
  }
  std::printf("\nshape check: msgs/request stays flat as burst width grows "
              "(locks serialize conflicting walks without retries), while "
              "makespan drops — concurrency is free in messages, per the "
              "Lemma 4.3 reduction.\n");
  return 0;
}

// EXP21 — crash recovery: recovery latency and permit-safety margin vs
// crash rate (PROTOCOL.md §9).
//
// A fixed async workload runs behind the reliable channel while the crash
// adversary's node fraction sweeps upward, in both durability modes.  The
// iterated wrapper re-drives crash-failed requests, so the watchdog's
// request-ticks histogram (armed at the submit boundary, disarmed at the
// final verdict) measures the *end-to-end* latency including every kill,
// release wave, and redrive — the recovery-latency percentiles reported
// here.  The permit-safety margin is M minus the permits actually granted;
// safety (granted <= M) must hold in every cell or the binary aborts.
//
// Determinism gate: the whole sweep runs twice — once at --jobs, once
// serially — and every point's registry JSON and run fingerprint must be
// byte-identical, or the binary aborts (the PR-5/6 contract extended to
// the crash adversary).
//
//   --jobs=N   worker threads for the parallel sweep (default: hardware)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/distributed_iterated.hpp"
#include "sim/channel.hpp"
#include "sim/crash.hpp"
#include "sim/fault.hpp"
#include "sim/watchdog.hpp"
#include "util/thread_pool.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

constexpr std::uint64_t kNodes = 48;
constexpr std::uint64_t kRequests = 400;
constexpr std::uint64_t kM = 120, kW = 20, kU = 512;

struct Point {
  double fraction = 0.0;
  agent::Durability durability = agent::Durability::kVolatile;
};

struct Sample {
  std::uint64_t granted = 0, rejected = 0, surfaced = 0;
  std::uint64_t crashes = 0, restarts = 0, killed = 0, redrives = 0;
  std::uint64_t restored = 0, journal_writes = 0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t messages = 0;
  sim::NetStats net;
  bool operator==(const Sample&) const = default;
};

Sample run_point(const Point& pt, std::uint64_t seed) {
  Sample out;
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kUniform,
                                          seed + 66));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, kNodes, rng);

  sim::CrashSchedule sch(Rng(seed + 3), pt.fraction, /*period=*/512,
                         /*down_len=*/64);
  sch.set_limit(kNodes);
  sch.set_immune(t.root());
  auto sched = std::make_shared<const sim::CrashSchedule>(sch);
  net.set_fault_policy(sim::make_crash_stack(nullptr, sched));
  net.enable_reliability();
  sim::CrashDriver crashes(queue, sched);
  sim::Watchdog wd(queue, 50'000'000);

  DistributedIterated::Options opts;
  opts.track_domains = false;
  opts.watchdog = &wd;
  opts.crashes = &crashes;
  opts.durability = pt.durability;
  opts.crash_redrives = 3;
  DistributedIterated ctrl(net, t, kM, kW, kU, opts);
  crashes.start(kNodes, SimTime{1} << 16);

  const auto nodes = t.alive_nodes();
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    ctrl.submit_event(nodes[rng.index(nodes.size())], [&](const Result& r) {
      out.granted += r.granted();
      out.rejected += r.outcome == Outcome::kRejected;
      out.surfaced += r.crash_failed;
    });
  }
  queue.run();
  while (wd.run_recovery_sweep() > 0) queue.run();
  wd.verify_idle();

  out.crashes = crashes.crashes();
  out.restarts = crashes.restarts();
  out.messages = ctrl.messages_used();
  out.net = net.stats();
  if (const obs::Registry* reg = obs::metrics()) {
    out.killed = reg->counter("crash.agents_killed");
    out.redrives = reg->counter("recovery.redrives");
    out.restored = reg->counter("recovery.boards_restored");
    out.journal_writes = reg->counter("recovery.snapshot_writes");
    if (const obs::Histogram* h = reg->histogram("watchdog.request_ticks")) {
      out.p50 = h->percentile(0.50);
      out.p95 = h->percentile(0.95);
      out.p99 = h->percentile(0.99);
    }
  }
  bench::Run::note_net(out.net);
  return out;
}

const char* dur_name(agent::Durability d) { return agent::durability_name(d); }

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp21_crash_recovery", argc, argv);
  const std::uint64_t seed = run.base_seed(21);
  banner("EXP21: recovery latency and permit-safety margin vs crash rate");

  std::vector<Point> points;
  for (const double f : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    points.push_back({f, agent::Durability::kVolatile});
    points.push_back({f, agent::Durability::kDurable});
  }
  run.param("nodes", kNodes);
  run.param("requests", kRequests);
  run.param("M", kM);
  run.param("W", kW);
  run.param("points", static_cast<std::uint64_t>(points.size()));

  // Two full sweeps — parallel and serial — with per-point registries;
  // both the registry JSON and the run fingerprint of every point must
  // match byte-for-byte before anything merges into the report.
  auto sweep = [&](unsigned jobs, std::vector<Sample>& out,
                   std::vector<obs::Registry>& regs) {
    util::for_each_index(points.size(), jobs, [&](std::uint64_t i) {
      obs::ScopedMetrics scope(regs[static_cast<std::size_t>(i)]);
      out[static_cast<std::size_t>(i)] =
          run_point(points[static_cast<std::size_t>(i)], seed);
    });
  };
  std::vector<Sample> par(points.size()), ser(points.size());
  std::vector<obs::Registry> par_regs(points.size()), ser_regs(points.size());
  sweep(run.jobs(), par, par_regs);
  sweep(1, ser, ser_regs);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!(par[i] == ser[i]) ||
        par_regs[i].to_json().dump() != ser_regs[i].to_json().dump()) {
      std::fprintf(stderr,
                   "FATAL: point %zu (f=%.2f, %s) diverged between "
                   "--jobs=%u and the serial sweep — crash runs must be "
                   "byte-identical at any job count\n",
                   i, points[i].fraction, dur_name(points[i].durability),
                   run.jobs());
      return 1;
    }
  }
  for (const obs::Registry& r : par_regs) run.registry().merge(r);

  Table tab({"crash frac", "boards", "granted", "margin", "surfaced",
             "redrives", "killed", "crashes", "restored", "p50", "p95",
             "p99"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    const Sample& s = par[i];
    if (s.granted > kM) {
      std::fprintf(stderr,
                   "FATAL: point %zu granted %llu > M=%llu — a crash "
                   "minted permits\n",
                   i, static_cast<unsigned long long>(s.granted),
                   static_cast<unsigned long long>(kM));
      return 1;
    }
    const std::uint64_t margin = kM - s.granted;
    tab.row({fp(pt.fraction, 2), dur_name(pt.durability), num(s.granted),
             num(margin), num(s.surfaced), num(s.redrives), num(s.killed),
             num(s.crashes), num(s.restored), num(s.p50), num(s.p95),
             num(s.p99)});
    const std::string prefix = "exp21.point." + std::to_string(i);
    obs::gauge(prefix + ".crash_fraction", pt.fraction);
    obs::gauge(prefix + ".durable",
               pt.durability == agent::Durability::kDurable ? 1.0 : 0.0);
    obs::gauge(prefix + ".granted", static_cast<double>(s.granted));
    obs::gauge(prefix + ".safety_margin", static_cast<double>(margin));
    obs::gauge(prefix + ".crashes", static_cast<double>(s.crashes));
    obs::gauge(prefix + ".agents_killed", static_cast<double>(s.killed));
    obs::gauge(prefix + ".redrives", static_cast<double>(s.redrives));
    obs::gauge(prefix + ".boards_restored", static_cast<double>(s.restored));
    obs::gauge(prefix + ".latency.p50", static_cast<double>(s.p50));
    obs::gauge(prefix + ".latency.p95", static_cast<double>(s.p95));
    obs::gauge(prefix + ".latency.p99", static_cast<double>(s.p99));
  }
  tab.print();
  std::printf(
      "\n  determinism: all %zu points byte-identical at --jobs=%u vs "
      "serial  [ok]\n",
      points.size(), run.jobs());
  std::printf(
      "\nshape check: safety (granted <= M) holds in every cell; the "
      "f=0.00 rows are the crash-free baseline.  Volatile rows pay for "
      "crashes in verdicts and latency: killed agents surface crash-failed "
      "rejections once the redrive budget runs out, and every redrive "
      "stretches the tail.  Durable rows restore boards from the journal "
      "instead — no kills, no redrives, no surfaced failures — the "
      "measured value of journaling O(log N) bits per board (Claim 4.8).  "
      "The margin closes to 0 in every mode because demand far exceeds M "
      "and the iterated rotation recollects even crash-rescued permits.\n");
  return 0;
}

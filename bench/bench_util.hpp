#pragma once

// Shared helpers for the EXP benches: fixed-width table printing in the
// style of a paper's evaluation section, plus common sweep plumbing.
//
// Each expN binary regenerates one experiment from DESIGN.md §4 and prints
// (a) the measured series and (b) the paper's claimed shape next to it, so
// EXPERIMENTS.md rows can be checked by eye from the bench output alone.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace dyncon::bench {

/// Print a rule line, a centered title, and a rule line.
inline void banner(const std::string& title) {
  std::puts("");
  std::puts(std::string(78, '=').c_str());
  std::printf("  %s\n", title.c_str());
  std::puts(std::string(78, '=').c_str());
}

inline void subhead(const std::string& text) {
  std::printf("\n-- %s\n", text.c_str());
}

/// Minimal fixed-width table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    // DYNCON_CSV=1 switches every bench table to machine-readable CSV
    // (for plotting scripts); the default is the human-readable layout.
    if (const char* csv = std::getenv("DYNCON_CSV");
        csv != nullptr && csv[0] == '1') {
      print_csv();
      return;
    }
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string{};
        std::printf("  %-*s", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 2;
    for (auto w : width) total += w + 2;
    std::puts(std::string(total, '-').c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  void print_csv() const {
    auto emit = [](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        if (c) std::printf(",");
        // Cells are simple tokens; quote anything containing a comma.
        if (r[c].find(',') != std::string::npos) {
          std::printf("\"%s\"", r[c].c_str());
        } else {
          std::printf("%s", r[c].c_str());
        }
      }
      std::printf("\n");
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(std::uint64_t v) { return std::to_string(v); }

inline std::string fp(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace dyncon::bench

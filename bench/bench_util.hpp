#pragma once

// Shared helpers for the EXP benches: fixed-width table printing in the
// style of a paper's evaluation section, plus common sweep plumbing.
//
// Each expN binary regenerates one experiment from DESIGN.md §4 and prints
// (a) the measured series and (b) the paper's claimed shape next to it, so
// EXPERIMENTS.md rows can be checked by eye from the bench output alone.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/net_adapter.hpp"
#include "obs/report.hpp"
#include "sim/network.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace dyncon::bench {

/// Print a rule line, a centered title, and a rule line.
inline void banner(const std::string& title) {
  std::puts("");
  std::puts(std::string(78, '=').c_str());
  std::printf("  %s\n", title.c_str());
  std::puts(std::string(78, '=').c_str());
}

inline void subhead(const std::string& text) {
  std::printf("\n-- %s\n", text.c_str());
}

/// Minimal fixed-width table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    // DYNCON_CSV=1 switches every bench table to machine-readable CSV
    // (for plotting scripts); the default is the human-readable layout.
    if (const char* csv = std::getenv("DYNCON_CSV");
        csv != nullptr && csv[0] == '1') {
      print_csv();
      return;
    }
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string{};
        std::printf("  %-*s", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 2;
    for (auto w : width) total += w + 2;
    std::puts(std::string(total, '-').c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  void print_csv() const {
    auto emit = [](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        if (c) std::printf(",");
        // Cells are simple tokens; quote anything containing a comma.
        if (r[c].find(',') != std::string::npos) {
          std::printf("\"%s\"", r[c].c_str());
        } else {
          std::printf("%s", r[c].c_str());
        }
      }
      std::printf("\n");
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(std::uint64_t v) { return std::to_string(v); }

inline std::string fp(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

/// Per-binary run-report plumbing.  Construct one at the top of main():
///
///   int main(int argc, char** argv) {
///     bench::Run run("exp1", argc, argv);
///     ...
///     run.net(net.stats());   // fold in each simulated network's totals
///   }
///
/// The constructor installs a fresh metrics registry (so every obs::count in
/// the library lands here) and parses the standard bench flags:
///
///   --metrics-out=<path>   write the run-report JSON on exit
///   --jobs=<N>             worker threads for parallel sweeps
///                          (default: hardware concurrency; 1 = serial)
///   --base-seed=<S>        override every sweep's built-in base seed
///
/// (each also accepts the two-token `--flag value` spelling).  The
/// destructor writes the run-report JSON — params, counters/gauges,
/// histograms, accumulated NetStats, wall time — to that path; with no
/// flag it only prints tables, exactly as before.  Sweeps executed through
/// `parallel_sweep` produce byte-identical tables and reports at any
/// --jobs value: parallelism changes wall-clock time only.
class Run {
 public:
  Run(std::string name, int argc, char** argv)
      : report_(std::move(name)),
        scoped_(registry_),
        start_(std::chrono::steady_clock::now()) {
    if (const auto p = util::flag_value(argc, argv, "--metrics-out")) {
      out_path_ = *p;
    }
    // Validated: --jobs=0 or garbage is a hard error, huge values clamp
    // (util::flag_count prints the diagnostics).
    jobs_ = util::flag_count(argc, argv, "--jobs",
                             util::ThreadPool::hardware_jobs());
    if (util::flag_present(argc, argv, "--base-seed")) {
      base_seed_override_ = util::flag_u64(argc, argv, "--base-seed", 0);
      report_.set_param("base_seed", obs::json::Value(*base_seed_override_));
    }
    current_ = this;
  }

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  ~Run() {
    if (current_ == this) current_ = nullptr;
    if (out_path_.empty()) return;
    obs::publish_net_stats(registry_, net_);
    obs::add_net_stats(report_, net_);
    report_.set_wall_time(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count());
    std::string err;
    if (!report_.write_file(out_path_, &registry_, &err)) {
      std::fprintf(stderr, "metrics-out: %s\n", err.c_str());
    } else {
      std::printf("\n[run report written to %s]\n", out_path_.c_str());
    }
  }

  void param(const std::string& key, std::uint64_t v) {
    report_.set_param(key, obs::json::Value(v));
  }
  void param(const std::string& key, double v) {
    report_.set_param(key, obs::json::Value(v));
  }
  void param(const std::string& key, const std::string& v) {
    report_.set_param(key, obs::json::Value(v));
  }

  /// Fold one simulated network's cumulative totals into the report.  Call
  /// once per Network, after its workload ran (NetStats is cumulative).
  /// Thread-safe: sweep points running on pool workers call this through
  /// note_net; NetStats::merge is sums and maxes, so the result is
  /// independent of arrival order.
  void net(const sim::NetStats& st) {
    std::scoped_lock lock(net_mu_);
    net_.merge(st);
  }

  /// Static spelling of net() for helpers that construct networks far from
  /// main(); a no-op when no Run is alive (plain table-only invocation).
  static void note_net(const sim::NetStats& st) {
    if (current_ != nullptr) current_->net(st);
  }

  /// Worker threads for parallel sweeps (--jobs; >= 1).
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// The sweep's base seed: the --base-seed override when given, else the
  /// bench's built-in default (so default output is unchanged).
  [[nodiscard]] std::uint64_t base_seed(std::uint64_t fallback) const {
    return base_seed_override_.value_or(fallback);
  }

  [[nodiscard]] obs::Registry& registry() { return registry_; }
  /// Direct access to the run report (to attach the spans/timeline
  /// sections a bench produced; params/net_stats keep their own setters).
  [[nodiscard]] obs::RunReport& report() { return report_; }
  [[nodiscard]] bool writes_report() const { return !out_path_.empty(); }

 private:
  obs::RunReport report_;
  obs::Registry registry_;
  obs::ScopedMetrics scoped_;  // installs registry_; order matters
  sim::NetStats net_;
  std::mutex net_mu_;
  std::string out_path_;
  unsigned jobs_ = 1;
  std::optional<std::uint64_t> base_seed_override_;
  std::chrono::steady_clock::time_point start_;

  inline static Run* current_ = nullptr;  // one Run per bench binary
};

/// Deterministic parallel sweep: run fn(i) for every point i in [0, points)
/// across up to `jobs` pool workers.  Each point executes with its OWN
/// freshly-constructed obs::Registry installed on its worker thread
/// (shared-nothing — library instrumentation lands in the point's registry,
/// not the Run's), and after all points finish the per-point registries are
/// merged into the calling thread's installed registry in point order.
///
/// Contract for fn: write results only into pre-sized, per-index slots (no
/// printing, no shared mutable state except Run::note_net, which is
/// thread-safe); print the collected rows afterwards, in point order.
/// Under that contract stdout and the metrics report are byte-identical
/// for every jobs value, including jobs=1 — which runs inline with no
/// threads but through this same registry plumbing.
///
/// Counter/histogram merging is commutative; gauge merging is additive and
/// reduced in point order, so even floating-point sums are deterministic.
template <typename Fn>
inline void parallel_sweep(std::size_t points, unsigned jobs, Fn&& fn) {
  std::vector<obs::Registry> point_regs(points);
  util::for_each_index(
      points, jobs, [&](std::uint64_t i) {
        obs::ScopedMetrics scope(point_regs[static_cast<std::size_t>(i)]);
        fn(static_cast<std::size_t>(i));
      });
  if (obs::Registry* main = obs::metrics()) {
    for (const obs::Registry& r : point_regs) main->merge(r);
  }
}

/// parallel_sweep with the Run's --jobs value.
template <typename Fn>
inline void parallel_sweep(Run& run, std::size_t points, Fn&& fn) {
  parallel_sweep(points, run.jobs(), std::forward<Fn>(fn));
}

}  // namespace dyncon::bench

// EXP12 — The fully distributed applications, end to end on the
// asynchronous simulator: size estimation (Thm 5.1), name assignment
// (Thm 5.2) and two-phase commit (§1.3), with every control message
// (broadcast/convergecast, DFS token walks) on the wire.
//
// The table reports amortized messages per membership change and the
// protocol invariants' worst observations.

#include <algorithm>
#include <cmath>

#include "apps/distributed_name_assignment.hpp"
#include "apps/distributed_size_estimation.hpp"
#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

namespace {

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  tree::DynamicTree tree;
  Sim() : net(queue, sim::make_delay(sim::DelayKind::kUniform, 3)) {}
  ~Sim() { bench::Run::note_net(net.stats()); }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp12", argc, argv);
  banner("EXP12: distributed applications, end to end");

  subhead("distributed size estimation (beta = 2)");
  {
    Table tab({"churn", "n0", "changes", "n_final", "iters", "worst ratio",
               "msgs/change", "/log^2 n"});
    for (auto model : workload::all_churn_models()) {
      Sim s;
      Rng rng(7);
      workload::build(s.tree, workload::Shape::kRandomAttach, 128, rng);
      apps::DistributedSizeEstimation est(s.net, s.tree, 2.0);
      workload::ChurnGenerator churn(model, Rng(9));
      double worst = 1.0;
      std::uint64_t changes = 0;
      for (int i = 0; i < 800 && s.tree.size() >= 4; ++i) {
        est.submit(churn.next(s.tree), [&](const core::Result& r) {
          changes += r.granted();
        });
        if (i % 4 == 3) {
          s.queue.run();
          const double ratio = static_cast<double>(est.estimate()) /
                               static_cast<double>(s.tree.size());
          worst = std::max({worst, ratio, 1.0 / ratio});
        }
      }
      s.queue.run();
      const double per = static_cast<double>(est.messages()) /
                         std::max<std::uint64_t>(changes, 1);
      const double lg = std::log2(static_cast<double>(
          std::max<std::uint64_t>(s.tree.size(), 4)));
      tab.row({workload::churn_name(model), num(128), num(changes),
               num(s.tree.size()), num(est.iterations()), fp(worst),
               fp(per, 1), fp(per / (lg * lg), 3)});
    }
    tab.print();
  }

  subhead("distributed name assignment");
  {
    Table tab({"churn", "changes", "n_final", "iters", "worst max_id/n",
               "unique?", "msgs/change"});
    for (auto model :
         {workload::ChurnModel::kGrowOnly, workload::ChurnModel::kBirthDeath,
          workload::ChurnModel::kInternalChurn}) {
      Sim s;
      Rng rng(11);
      workload::build(s.tree, workload::Shape::kRandomAttach, 96, rng);
      apps::DistributedNameAssignment names(s.net, s.tree);
      workload::ChurnGenerator churn(model, Rng(13));
      std::uint64_t changes = 0;
      double worst = 0;
      bool unique = true;
      for (int i = 0; i < 500 && s.tree.size() >= 4; ++i) {
        names.submit(churn.next(s.tree), [&](const core::Result& r) {
          changes += r.granted();
        });
        if (i % 8 == 7) {
          s.queue.run();
          worst = std::max(worst, static_cast<double>(names.max_id()) /
                                      static_cast<double>(s.tree.size()));
          unique = unique && names.ids_unique();
        }
      }
      s.queue.run();
      tab.row({workload::churn_name(model), num(changes),
               num(s.tree.size()), num(names.iterations()), fp(worst),
               unique ? "yes" : "NO",
               fp(static_cast<double>(names.messages()) /
                      std::max<std::uint64_t>(changes, 1),
                  1)});
    }
    tab.print();
  }

  subhead("two-phase commit rounds under churn (beta = 1.3)");
  {
    Table tab({"round", "nodes", "estimate", "threshold", "yes frac",
               "decision", "sound?"});
    Sim s;
    Rng rng(15);
    workload::build(s.tree, workload::Shape::kRandomAttach, 100, rng);
    apps::TwoPhaseCommit tpc(s.net, s.tree, 1.3);
    Rng coin(17);
    std::unordered_map<NodeId, apps::Vote> ballot;
    auto vote = [&](NodeId v, double p) {
      const auto w = coin.chance(p) ? apps::Vote::kYes : apps::Vote::kNo;
      ballot[v] = w;
      tpc.set_vote(v, w);
    };
    for (NodeId v : s.tree.alive_nodes()) vote(v, 0.8);
    workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath,
                                   Rng(19));
    for (int round = 1; round <= 6; ++round) {
      const double p = 0.9 - 0.1 * round;
      for (int i = 0; i < 30; ++i) {
        const auto spec = churn.next(s.tree);
        if (spec.type == core::RequestSpec::Type::kAddLeaf) {
          tpc.submit_add_leaf(spec.subject, [&, p](const core::Result& r) {
            if (r.granted()) vote(r.new_node, p);
          });
        } else if (spec.type == core::RequestSpec::Type::kRemove) {
          tpc.submit_remove(spec.subject, [](const core::Result&) {});
        }
      }
      s.queue.run();
      apps::Decision d = apps::Decision::kAbort;
      tpc.run_round([&](apps::Decision dd) { d = dd; });
      s.queue.run();
      std::uint64_t yes = 0;
      for (NodeId v : s.tree.alive_nodes()) {
        auto it = ballot.find(v);
        yes += it != ballot.end() && it->second == apps::Vote::kYes;
      }
      const bool sound =
          d == apps::Decision::kAbort || 2 * yes > s.tree.size();
      tab.row({num(static_cast<std::uint64_t>(round)), num(s.tree.size()),
               num(tpc.size_estimate()), num(tpc.commit_threshold()),
               fp(static_cast<double>(yes) /
                  static_cast<double>(s.tree.size())),
               d == apps::Decision::kCommit ? "COMMIT" : "abort",
               sound ? "yes" : "NO"});
    }
    tab.print();
  }

  std::printf("\ninvariants: size ratio <= beta; ids unique and <= 4n; "
              "every COMMIT backed by a strict true majority.\n");
  return 0;
}

// EXP12 — The fully distributed applications, end to end on the
// asynchronous simulator: size estimation (Thm 5.1), name assignment
// (Thm 5.2) and two-phase commit (§1.3), with every control message
// (broadcast/convergecast, DFS token walks) on the wire.
//
// The table reports amortized messages per membership change and the
// protocol invariants' worst observations.
//
// The size-estimation and name-assignment sections sweep churn models as
// independent seeded runs in parallel; the two-phase-commit section is a
// single sequential history (rounds build on each other) and stays serial.

#include <algorithm>
#include <cmath>

#include "apps/distributed_name_assignment.hpp"
#include "apps/distributed_size_estimation.hpp"
#include "apps/two_phase_commit.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

namespace {

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  tree::DynamicTree tree;
  Sim() : net(queue, sim::make_delay(sim::DelayKind::kUniform, 3)) {}
  ~Sim() { bench::Run::note_net(net.stats()); }
};

struct EstPoint {
  std::uint64_t changes = 0;
  std::uint64_t n_final = 0;
  std::uint64_t iters = 0;
  double worst = 1.0;
  double per = 0.0;
  double per_norm = 0.0;
};

EstPoint run_estimation(workload::ChurnModel model, std::uint64_t seed) {
  Sim s;
  Rng rng(seed);
  workload::build(s.tree, workload::Shape::kRandomAttach, 128, rng);
  apps::DistributedSizeEstimation est(s.net, s.tree, 2.0);
  workload::ChurnGenerator churn(model, Rng(seed + 2));
  EstPoint out;
  for (int i = 0; i < 800 && s.tree.size() >= 4; ++i) {
    est.submit(churn.next(s.tree), [&](const core::Result& r) {
      out.changes += r.granted();
    });
    if (i % 4 == 3) {
      s.queue.run();
      const double ratio = static_cast<double>(est.estimate()) /
                           static_cast<double>(s.tree.size());
      out.worst = std::max({out.worst, ratio, 1.0 / ratio});
    }
  }
  s.queue.run();
  out.per = static_cast<double>(est.messages()) /
            std::max<std::uint64_t>(out.changes, 1);
  const double lg = std::log2(
      static_cast<double>(std::max<std::uint64_t>(s.tree.size(), 4)));
  out.per_norm = out.per / (lg * lg);
  out.n_final = s.tree.size();
  out.iters = est.iterations();
  return out;
}

struct NamePoint {
  std::uint64_t changes = 0;
  std::uint64_t n_final = 0;
  std::uint64_t iters = 0;
  double worst = 0.0;
  bool unique = true;
  double per = 0.0;
};

NamePoint run_names(workload::ChurnModel model, std::uint64_t seed) {
  Sim s;
  Rng rng(seed + 4);
  workload::build(s.tree, workload::Shape::kRandomAttach, 96, rng);
  apps::DistributedNameAssignment names(s.net, s.tree);
  workload::ChurnGenerator churn(model, Rng(seed + 6));
  NamePoint out;
  for (int i = 0; i < 500 && s.tree.size() >= 4; ++i) {
    names.submit(churn.next(s.tree), [&](const core::Result& r) {
      out.changes += r.granted();
    });
    if (i % 8 == 7) {
      s.queue.run();
      out.worst = std::max(out.worst, static_cast<double>(names.max_id()) /
                                          static_cast<double>(s.tree.size()));
      out.unique = out.unique && names.ids_unique();
    }
  }
  s.queue.run();
  out.per = static_cast<double>(names.messages()) /
            std::max<std::uint64_t>(out.changes, 1);
  out.n_final = s.tree.size();
  out.iters = names.iterations();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp12", argc, argv);
  const std::uint64_t seed = run.base_seed(7);
  banner("EXP12: distributed applications, end to end");

  subhead("distributed size estimation (beta = 2)");
  {
    const auto models = workload::all_churn_models();
    std::vector<EstPoint> points(models.size());
    parallel_sweep(run, points.size(), [&](std::size_t i) {
      points[i] = run_estimation(models[i], seed);
    });
    Table tab({"churn", "n0", "changes", "n_final", "iters", "worst ratio",
               "msgs/change", "/log^2 n"});
    for (std::size_t i = 0; i < models.size(); ++i) {
      const EstPoint& p = points[i];
      tab.row({workload::churn_name(models[i]), num(128), num(p.changes),
               num(p.n_final), num(p.iters), fp(p.worst), fp(p.per, 1),
               fp(p.per_norm, 3)});
    }
    tab.print();
  }

  subhead("distributed name assignment");
  {
    const std::vector<workload::ChurnModel> models = {
        workload::ChurnModel::kGrowOnly, workload::ChurnModel::kBirthDeath,
        workload::ChurnModel::kInternalChurn};
    std::vector<NamePoint> points(models.size());
    parallel_sweep(run, points.size(), [&](std::size_t i) {
      points[i] = run_names(models[i], seed);
    });
    Table tab({"churn", "changes", "n_final", "iters", "worst max_id/n",
               "unique?", "msgs/change"});
    for (std::size_t i = 0; i < models.size(); ++i) {
      const NamePoint& p = points[i];
      tab.row({workload::churn_name(models[i]), num(p.changes),
               num(p.n_final), num(p.iters), fp(p.worst),
               p.unique ? "yes" : "NO", fp(p.per, 1)});
    }
    tab.print();
  }

  subhead("two-phase commit rounds under churn (beta = 1.3)");
  {
    Table tab({"round", "nodes", "estimate", "threshold", "yes frac",
               "decision", "sound?"});
    Sim s;
    Rng rng(seed + 8);
    workload::build(s.tree, workload::Shape::kRandomAttach, 100, rng);
    apps::TwoPhaseCommit tpc(s.net, s.tree, 1.3);
    Rng coin(seed + 10);
    std::unordered_map<NodeId, apps::Vote> ballot;
    auto vote = [&](NodeId v, double p) {
      const auto w = coin.chance(p) ? apps::Vote::kYes : apps::Vote::kNo;
      ballot[v] = w;
      tpc.set_vote(v, w);
    };
    for (NodeId v : s.tree.alive_nodes()) vote(v, 0.8);
    workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath,
                                   Rng(seed + 12));
    for (int round = 1; round <= 6; ++round) {
      const double p = 0.9 - 0.1 * round;
      for (int i = 0; i < 30; ++i) {
        const auto spec = churn.next(s.tree);
        if (spec.type == core::RequestSpec::Type::kAddLeaf) {
          tpc.submit_add_leaf(spec.subject, [&, p](const core::Result& r) {
            if (r.granted()) vote(r.new_node, p);
          });
        } else if (spec.type == core::RequestSpec::Type::kRemove) {
          tpc.submit_remove(spec.subject, [](const core::Result&) {});
        }
      }
      s.queue.run();
      apps::Decision d = apps::Decision::kAbort;
      tpc.run_round([&](apps::Decision dd) { d = dd; });
      s.queue.run();
      std::uint64_t yes = 0;
      for (NodeId v : s.tree.alive_nodes()) {
        auto it = ballot.find(v);
        yes += it != ballot.end() && it->second == apps::Vote::kYes;
      }
      const bool sound =
          d == apps::Decision::kAbort || 2 * yes > s.tree.size();
      tab.row({num(static_cast<std::uint64_t>(round)), num(s.tree.size()),
               num(tpc.size_estimate()), num(tpc.commit_threshold()),
               fp(static_cast<double>(yes) /
                  static_cast<double>(s.tree.size())),
               d == apps::Decision::kCommit ? "COMMIT" : "abort",
               sound ? "yes" : "NO"});
    }
    tab.print();
  }

  std::printf("\ninvariants: size ratio <= beta; ids unique and <= 4n; "
              "every COMMIT backed by a strict true majority.\n");
  return 0;
}

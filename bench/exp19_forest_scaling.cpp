// EXP19 — forest runtime scaling: aggregate requests/sec vs shard count,
// plus the memory model that lets one engine host a million trees.
//
// One ForestEngine run serves a fixed closed-loop workload (a large Zipf-
// skewed user population multiplexed over many controller-managed trees);
// the sweep re-runs it at increasing --shards and reports aggregate
// throughput.  Four claims are checked:
//
//   determinism   the registry JSON (every counter + histogram) and the
//                 engine's shard-invariant stats are byte-identical at
//                 shards=1 and shards=N — sharding may only change
//                 wall-clock time.  Mismatch aborts the binary.  The same
//                 gate re-runs at a deliberately tiny --resident-trees
//                 budget: hibernation may only change wall-clock time too.
//   scaling       requests/sec grows with shards; on a machine with >= 4
//                 hardware threads the 4-shard run must clear 2x the
//                 1-shard run (ISSUE 6 acceptance bar; reported either way
//                 as perf.forest.speedup.s4).
//   allocation    the steady-state shard loop allocates ~0 per event: the
//                 echo-service phase (engine machinery only, shards=1 so
//                 the loop runs inline with no pool, --eager so one-time
//                 materialization stays out of the measured loop)
//                 re-measures PR 4's zero-allocation property.
//   memory        lazy materialization + arena slots + hibernation shrink
//                 the per-tree footprint: the memory phase prices an eager
//                 build against the lazy engine at the same scale and
//                 publishes perf.forest.bytes_per_tree / mem_reduction /
//                 startup_ratio plus the perf.mem.* gauges (RSS, arena,
//                 images, index).  tools/check_bench.py gates these in the
//                 CI scale cell (--forest-mem-reduction-min and friends).
//
// perf.forest.* and perf.mem.* gauges are machine-local (wall-clock and
// allocator derived), like perf.parallel.*: tools/check_bench.py skips them
// in cross-machine diffs and gates them separately.
//
//   --shards=N          cap the sweep's largest shard count (default 8)
//   --trees=N           forest size (default 64; the million-tree recipe in
//                       EXPERIMENTS.md runs 10^5..10^6)
//   --users=N           closed-loop population (default 8192)
//   --resident-trees=N  per-shard resident budget for the sweep + memory
//                       phase (default 0 = unlimited)
//   --no-batch          disable exchange batching (one BatchFrame per
//                       (shard, window) completion batch); the registry
//                       must not care
//   --jobs              accepted for uniformity; the forest pins workers =
//                       shards

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "forest/forest.hpp"
#include "obs/meminfo.hpp"
#include "util/cli.hpp"

// ---- operator-new counter (same instrument as perf_suite) -------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dyncon;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 0x19f07e57ULL;  // exp19 forest

struct Knobs {
  std::uint64_t trees = 64;
  std::uint64_t users = 8192;
  std::uint64_t resident = 0;  // per-shard; 0 = unlimited
};

forest::ForestConfig scaling_config(unsigned shards, const Knobs& knobs) {
  forest::ForestConfig cfg;
  cfg.shards = shards;
  cfg.mux.users = knobs.users;
  cfg.mux.trees = knobs.trees;
  cfg.mux.requests_per_user = 16;
  // Moderate skew: hot tenants exist, but the modulo placement still
  // spreads the top trees across shards (tree t lives on shard t % K).
  cfg.mux.zipf_s = 0.9;
  cfg.tree_size = 48;
  cfg.window = 256;
  cfg.service = forest::Service::kController;
  cfg.resident_trees = knobs.resident;
  return cfg;
}

struct SweepPoint {
  unsigned shards = 1;
  double secs = 0;
  forest::ForestStats stats;
  forest::ForestMemStats mem;
  std::string registry_json;  // full counter/histogram dump for the diff
};

SweepPoint run_forest(const forest::ForestConfig& cfg) {
  SweepPoint pt;
  pt.shards = cfg.shards;
  // Shard registries merge into THIS registry; it is compared, then merged
  // into the bench Run's registry so the report carries the counters.
  obs::Registry reg;
  forest::ForestEngine engine(cfg, kSeed);
  const auto t0 = Clock::now();
  {
    obs::ScopedMetrics scope(reg);
    pt.stats = engine.run();
  }
  pt.secs = std::chrono::duration<double>(Clock::now() - t0).count();
  pt.mem = engine.mem_stats();
  pt.registry_json = reg.to_json().dump();
  if (obs::Registry* main = obs::metrics()) main->merge(reg);
  return pt;
}

bool stats_match(const forest::ForestStats& a, const forest::ForestStats& b) {
  // Only the knob-invariant fields; cross_shard/barriers/tree_builds/
  // hibernations legitimately differ with K and the residency budget.
  return a.requests == b.requests && a.granted == b.granted &&
         a.rejected == b.rejected && a.other == b.other &&
         a.events == b.events && a.windows == b.windows &&
         a.handoffs == b.handoffs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp19_forest_scaling", argc, argv);
  bench::banner(
      "EXP19 — sharded forest runtime: requests/sec vs shard count");

  const unsigned hw = util::ThreadPool::hardware_jobs();
  const unsigned max_shards =
      util::flag_count(argc, argv, "--shards", 8, /*max_value=*/64);
  const bool batch_exchange = !util::flag_present(argc, argv, "--no-batch");
  Knobs knobs;
  knobs.trees = util::flag_u64(argc, argv, "--trees", 64);
  knobs.users = util::flag_u64(argc, argv, "--users", 8192);
  knobs.resident = util::flag_u64(argc, argv, "--resident-trees", 0);
  run.param("hw_threads", static_cast<std::uint64_t>(hw));
  run.param("max_shards", static_cast<std::uint64_t>(max_shards));
  run.param("batch_exchange", std::uint64_t{batch_exchange ? 1u : 0u});
  run.registry().set_gauge("perf.forest.hw_threads",
                           static_cast<double>(hw));

  const forest::ForestConfig base = scaling_config(1, knobs);
  run.param("users", base.mux.users);
  run.param("trees", base.mux.trees);
  run.param("resident_trees", base.resident_trees);
  run.param("requests_per_user", base.mux.requests_per_user);
  run.param("tree_size", base.tree_size);
  run.param("window", base.window);
  run.param("zipf_s", base.mux.zipf_s);

  std::vector<unsigned> shard_counts;
  for (unsigned k = 1; k <= max_shards; k *= 2) shard_counts.push_back(k);

  bench::subhead("scaling sweep (identical workload, shards doubled)");
  std::vector<SweepPoint> points;
  points.reserve(shard_counts.size());
  for (unsigned k : shard_counts) {
    forest::ForestConfig cfg = scaling_config(k, knobs);
    cfg.batch_exchange = batch_exchange;
    points.push_back(run_forest(cfg));
  }

  // Determinism gate: every point must agree with the 1-shard run on the
  // merged registry (all counters + histograms) and the invariant stats.
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].registry_json != points[0].registry_json ||
        !stats_match(points[i].stats, points[0].stats)) {
      std::fprintf(stderr,
                   "FATAL: shards=%u diverged from shards=1 — the forest "
                   "runtime must be byte-identical at any shard count\n",
                   points[i].shards);
      return 1;
    }
  }

  // Same gate across residency budgets: a starved budget (2 resident trees
  // per shard, so nearly every touch is a wake) must reproduce the
  // unlimited run byte for byte.  Lossless hibernation, or the binary dies.
  {
    forest::ForestConfig cfg = scaling_config(shard_counts.back(), knobs);
    cfg.batch_exchange = batch_exchange;
    cfg.resident_trees = 2;
    const SweepPoint starved = run_forest(cfg);
    if (starved.registry_json != points[0].registry_json ||
        !stats_match(starved.stats, points[0].stats)) {
      std::fprintf(stderr,
                   "FATAL: --resident-trees=2 diverged — hibernation must "
                   "be byte-identical at any residency budget\n");
      return 1;
    }
    std::printf(
        "  residency identity: budget=2 matches unlimited "
        "(hibernations=%llu wakes=%llu)  [ok]\n",
        static_cast<unsigned long long>(starved.stats.hibernations),
        static_cast<unsigned long long>(starved.stats.wakes));
  }

  bench::Table table({"shards", "requests", "granted", "windows", "events",
                      "cross_shard", "builds", "reqs/sec", "speedup"});
  const double base_rate =
      static_cast<double>(points[0].stats.requests) / points[0].secs;
  double speedup4 = 0.0;
  for (const SweepPoint& pt : points) {
    const double rate = static_cast<double>(pt.stats.requests) / pt.secs;
    const double speedup = rate / base_rate;
    if (pt.shards == 4) speedup4 = speedup;
    table.row({bench::num(pt.shards), bench::num(pt.stats.requests),
               bench::num(pt.stats.granted), bench::num(pt.stats.windows),
               bench::num(pt.stats.events), bench::num(pt.stats.cross_shard),
               bench::num(pt.stats.tree_builds),
               bench::fp(rate / 1e3, 1) + "k", bench::fp(speedup) + "x"});
    const std::string suffix = ".s" + std::to_string(pt.shards);
    run.registry().set_gauge("perf.forest.requests_per_sec" + suffix, rate);
    run.registry().set_gauge(
        "perf.forest.events_per_sec" + suffix,
        static_cast<double>(pt.stats.events) / pt.secs);
    run.registry().set_gauge("perf.forest.speedup" + suffix, speedup);
  }
  table.print();
  std::printf("\n  determinism: all %zu shard counts byte-identical  [ok]\n",
              points.size());

  // The 2x-at-4-shards acceptance bar only binds with real parallelism
  // underneath, and only for the default-scale workload it was set against
  // (a scaled-up forest under a tight residency budget is eviction-bound:
  // wall clock goes to hibernate/wake churn, which the bar never priced).
  // On smaller machines / scaled runs the sweep still validates
  // determinism, and check_bench gates the scale cell's memory figures.
  const bool default_scale =
      knobs.trees == 64 && knobs.users == 8192 && knobs.resident == 0;
  if (default_scale && hw >= 4 && speedup4 > 0.0 && speedup4 < 2.0) {
    std::fprintf(stderr,
                 "FATAL: 4-shard speedup %.2fx < 2x on %u hardware threads\n",
                 speedup4, hw);
    return 1;
  }

  bench::subhead("memory model (eager build priced against the lazy engine)");
  {
    const double trees_d = static_cast<double>(knobs.trees);
    // Eager price: what the pre-lazy engine paid — every tree's
    // DynamicTree + controller on the heap at construction, kept (and
    // grown by the workload) for the whole run.  Measured post-run so the
    // comparison with the lazy engine is the same workload's footprint,
    // not construction vs steady state.
    double eager_secs = 0;
    double eager_bytes_per_tree = 0;
    {
      forest::ForestConfig cfg = scaling_config(1, knobs);
      cfg.batch_exchange = batch_exchange;
      cfg.eager = true;
      cfg.resident_trees = 0;  // the pre-lazy engine never evicted
      const auto t0 = Clock::now();
      auto engine = std::make_unique<forest::ForestEngine>(cfg, kSeed);
      eager_secs = std::chrono::duration<double>(Clock::now() - t0).count();
      obs::Registry reg;
      {
        obs::ScopedMetrics scope(reg);
        (void)engine->run();
      }
      if (obs::Registry* main = obs::metrics()) main->merge(reg);
      const forest::ForestMemStats m = engine->mem_stats();
      eager_bytes_per_tree =
          static_cast<double>(m.accounting_bytes()) / trees_d;
    }
    // Lazy price: startup is an index fill; the full run then materializes
    // only what the workload touches, within the residency budget.
    forest::ForestConfig cfg = scaling_config(1, knobs);
    cfg.batch_exchange = batch_exchange;
    const auto t0 = Clock::now();
    forest::ForestEngine engine(cfg, kSeed);
    const double lazy_secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    obs::Registry reg;
    forest::ForestStats st;
    {
      obs::ScopedMetrics scope(reg);
      st = engine.run();
    }
    if (obs::Registry* main = obs::metrics()) main->merge(reg);
    const forest::ForestMemStats m = engine.mem_stats();
    const double lazy_bytes_per_tree =
        static_cast<double>(m.accounting_bytes()) / trees_d;
    const double reduction =
        lazy_bytes_per_tree > 0 ? eager_bytes_per_tree / lazy_bytes_per_tree
                                : 0;
    const double startup_ratio = eager_secs > 0 ? lazy_secs / eager_secs : 0;

    obs::Registry& r = run.registry();
    r.set_gauge("perf.forest.bytes_per_tree", lazy_bytes_per_tree);
    r.set_gauge("perf.forest.bytes_per_tree_eager", eager_bytes_per_tree);
    r.set_gauge("perf.forest.mem_reduction", reduction);
    r.set_gauge("perf.forest.startup_sec_eager", eager_secs);
    r.set_gauge("perf.forest.startup_sec_lazy", lazy_secs);
    r.set_gauge("perf.forest.startup_ratio", startup_ratio);
    r.set_gauge("perf.mem.rss_bytes",
                static_cast<double>(obs::current_rss_bytes()));
    r.set_gauge("perf.mem.peak_rss_bytes",
                static_cast<double>(obs::peak_rss_bytes()));
    r.set_gauge("perf.mem.arena_bytes", static_cast<double>(m.arena_bytes));
    r.set_gauge("perf.mem.image_bytes", static_cast<double>(m.image_bytes));
    r.set_gauge("perf.mem.index_bytes", static_cast<double>(m.index_bytes));
    r.set_gauge("perf.mem.trees", static_cast<double>(m.trees));
    r.set_gauge("perf.mem.virgin_trees", static_cast<double>(m.virgin));
    r.set_gauge("perf.mem.resident_trees", static_cast<double>(m.resident));
    r.set_gauge("perf.mem.hibernated_trees",
                static_cast<double>(m.hibernated));
    r.set_gauge("perf.mem.materialized_trees",
                static_cast<double>(m.materialized));

    std::printf(
        "  eager: %.1f bytes/tree, startup %.3fs   lazy: %.1f bytes/tree, "
        "startup %.5fs\n"
        "  reduction=%.1fx  startup_ratio=%.4f  builds=%llu "
        "hibernations=%llu wakes=%llu avg_image=%.0f bits\n"
        "  trees: %llu virgin / %llu resident / %llu hibernated  "
        "(peak rss %.1f MiB)\n",
        eager_bytes_per_tree, eager_secs, lazy_bytes_per_tree, lazy_secs,
        reduction, startup_ratio,
        static_cast<unsigned long long>(st.tree_builds),
        static_cast<unsigned long long>(st.hibernations),
        static_cast<unsigned long long>(st.wakes),
        st.hibernations != 0 ? static_cast<double>(st.hibernate_bits) /
                                   static_cast<double>(st.hibernations)
                             : 0.0,
        static_cast<unsigned long long>(m.virgin),
        static_cast<unsigned long long>(m.resident),
        static_cast<unsigned long long>(m.hibernated),
        static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0));
  }

  bench::subhead(
      "steady-state allocation (echo service, shards=1, inline, --eager)");
  {
    forest::ForestConfig cfg = scaling_config(1, knobs);
    cfg.service = forest::Service::kEcho;
    cfg.eager = true;  // materialization is setup, not steady state
    cfg.resident_trees = 0;
    obs::Registry reg;
    forest::ForestEngine engine(cfg, kSeed);  // setup allocs excluded
    const std::uint64_t a0 = allocs_now();
    const auto t0 = Clock::now();
    forest::ForestStats st;
    {
      obs::ScopedMetrics scope(reg);
      st = engine.run();
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    const std::uint64_t allocs = allocs_now() - a0;
    const double per_event =
        static_cast<double>(allocs) / static_cast<double>(st.events);
    if (obs::Registry* main = obs::metrics()) main->merge(reg);
    run.registry().set_gauge("perf.forest.allocs_per_event", per_event);
    run.registry().set_gauge("perf.forest.echo_events_per_sec",
                             static_cast<double>(st.events) / secs);
    std::printf(
        "  events=%llu  allocs=%llu  allocs/event=%.4f  (events/sec=%.0fk)\n",
        static_cast<unsigned long long>(st.events),
        static_cast<unsigned long long>(allocs), per_event,
        static_cast<double>(st.events) / secs / 1e3);
  }

  std::puts("");
  return 0;
}

// EXP19 — forest runtime scaling: aggregate requests/sec vs shard count.
//
// One ForestEngine run serves a fixed closed-loop workload (a large Zipf-
// skewed user population multiplexed over many controller-managed trees);
// the sweep re-runs it at increasing --shards and reports aggregate
// throughput.  Three claims are checked:
//
//   determinism   the registry JSON (every counter + histogram) and the
//                 engine's shard-invariant stats are byte-identical at
//                 shards=1 and shards=N — sharding may only change
//                 wall-clock time.  Mismatch aborts the binary.
//   scaling       requests/sec grows with shards; on a machine with >= 4
//                 hardware threads the 4-shard run must clear 2x the
//                 1-shard run (ISSUE 6 acceptance bar; reported either way
//                 as perf.forest.speedup.s4).
//   allocation    the steady-state shard loop allocates ~0 per event: the
//                 echo-service phase (engine machinery only, shards=1 so
//                 the loop runs inline with no pool) re-measures PR 4's
//                 zero-allocation property through the forest path.
//
// perf.forest.* gauges are machine-local (wall-clock derived), like
// perf.parallel.*: tools/check_bench.py skips them in cross-machine diffs
// and gates the speedup separately (--forest-speedup-min).
//
//   --shards=N   cap the sweep's largest shard count (default 8)
//   --no-batch   disable exchange batching (one BatchFrame per (shard,
//                window) completion batch); the registry must not care
//   --jobs       accepted for uniformity; the forest pins workers = shards

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "forest/forest.hpp"
#include "util/cli.hpp"

// ---- operator-new counter (same instrument as perf_suite) -------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dyncon;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 0x19f07e57ULL;  // exp19 forest

forest::ForestConfig scaling_config(unsigned shards) {
  forest::ForestConfig cfg;
  cfg.shards = shards;
  cfg.mux.users = 8192;
  cfg.mux.trees = 64;
  cfg.mux.requests_per_user = 16;
  // Moderate skew: hot tenants exist, but the modulo placement still
  // spreads the top trees across shards (tree t lives on shard t % K).
  cfg.mux.zipf_s = 0.9;
  cfg.tree_size = 48;
  cfg.window = 256;
  cfg.service = forest::Service::kController;
  return cfg;
}

struct SweepPoint {
  unsigned shards = 1;
  double secs = 0;
  forest::ForestStats stats;
  std::string registry_json;  // full counter/histogram dump for the diff
};

SweepPoint run_forest(const forest::ForestConfig& cfg) {
  SweepPoint pt;
  pt.shards = cfg.shards;
  // Shard registries merge into THIS registry; it is compared, then merged
  // into the bench Run's registry so the report carries the counters.
  obs::Registry reg;
  forest::ForestEngine engine(cfg, kSeed);
  const auto t0 = Clock::now();
  {
    obs::ScopedMetrics scope(reg);
    pt.stats = engine.run();
  }
  pt.secs = std::chrono::duration<double>(Clock::now() - t0).count();
  pt.registry_json = reg.to_json().dump();
  if (obs::Registry* main = obs::metrics()) main->merge(reg);
  return pt;
}

bool stats_match(const forest::ForestStats& a, const forest::ForestStats& b) {
  // Only the shard-count-invariant fields; cross_shard/barriers legitimately
  // differ with K.
  return a.requests == b.requests && a.granted == b.granted &&
         a.rejected == b.rejected && a.other == b.other &&
         a.events == b.events && a.windows == b.windows &&
         a.handoffs == b.handoffs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp19_forest_scaling", argc, argv);
  bench::banner(
      "EXP19 — sharded forest runtime: requests/sec vs shard count");

  const unsigned hw = util::ThreadPool::hardware_jobs();
  const unsigned max_shards =
      util::flag_count(argc, argv, "--shards", 8, /*max_value=*/64);
  const bool batch_exchange = !util::flag_present(argc, argv, "--no-batch");
  run.param("hw_threads", static_cast<std::uint64_t>(hw));
  run.param("max_shards", static_cast<std::uint64_t>(max_shards));
  run.param("batch_exchange", std::uint64_t{batch_exchange ? 1u : 0u});
  run.registry().set_gauge("perf.forest.hw_threads",
                           static_cast<double>(hw));

  const forest::ForestConfig base = scaling_config(1);
  run.param("users", base.mux.users);
  run.param("trees", base.mux.trees);
  run.param("requests_per_user", base.mux.requests_per_user);
  run.param("tree_size", base.tree_size);
  run.param("window", base.window);
  run.param("zipf_s", base.mux.zipf_s);

  std::vector<unsigned> shard_counts;
  for (unsigned k = 1; k <= max_shards; k *= 2) shard_counts.push_back(k);

  bench::subhead("scaling sweep (identical workload, shards doubled)");
  std::vector<SweepPoint> points;
  points.reserve(shard_counts.size());
  for (unsigned k : shard_counts) {
    forest::ForestConfig cfg = scaling_config(k);
    cfg.batch_exchange = batch_exchange;
    points.push_back(run_forest(cfg));
  }

  // Determinism gate: every point must agree with the 1-shard run on the
  // merged registry (all counters + histograms) and the invariant stats.
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].registry_json != points[0].registry_json ||
        !stats_match(points[i].stats, points[0].stats)) {
      std::fprintf(stderr,
                   "FATAL: shards=%u diverged from shards=1 — the forest "
                   "runtime must be byte-identical at any shard count\n",
                   points[i].shards);
      return 1;
    }
  }

  bench::Table table({"shards", "requests", "granted", "windows", "events",
                      "cross_shard", "reqs/sec", "speedup"});
  const double base_rate =
      static_cast<double>(points[0].stats.requests) / points[0].secs;
  double speedup4 = 0.0;
  for (const SweepPoint& pt : points) {
    const double rate = static_cast<double>(pt.stats.requests) / pt.secs;
    const double speedup = rate / base_rate;
    if (pt.shards == 4) speedup4 = speedup;
    table.row({bench::num(pt.shards), bench::num(pt.stats.requests),
               bench::num(pt.stats.granted), bench::num(pt.stats.windows),
               bench::num(pt.stats.events), bench::num(pt.stats.cross_shard),
               bench::fp(rate / 1e3, 1) + "k", bench::fp(speedup) + "x"});
    const std::string suffix = ".s" + std::to_string(pt.shards);
    run.registry().set_gauge("perf.forest.requests_per_sec" + suffix, rate);
    run.registry().set_gauge(
        "perf.forest.events_per_sec" + suffix,
        static_cast<double>(pt.stats.events) / pt.secs);
    run.registry().set_gauge("perf.forest.speedup" + suffix, speedup);
  }
  table.print();
  std::printf("\n  determinism: all %zu shard counts byte-identical  [ok]\n",
              points.size());

  // The 2x-at-4-shards acceptance bar only binds with real parallelism
  // underneath; on smaller machines the sweep still validates determinism.
  if (hw >= 4 && speedup4 > 0.0 && speedup4 < 2.0) {
    std::fprintf(stderr,
                 "FATAL: 4-shard speedup %.2fx < 2x on %u hardware threads\n",
                 speedup4, hw);
    return 1;
  }

  bench::subhead("steady-state allocation (echo service, shards=1, inline)");
  {
    forest::ForestConfig cfg = scaling_config(1);
    cfg.service = forest::Service::kEcho;
    obs::Registry reg;
    forest::ForestEngine engine(cfg, kSeed);  // setup allocs excluded
    const std::uint64_t a0 = allocs_now();
    const auto t0 = Clock::now();
    forest::ForestStats st;
    {
      obs::ScopedMetrics scope(reg);
      st = engine.run();
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    const std::uint64_t allocs = allocs_now() - a0;
    const double per_event =
        static_cast<double>(allocs) / static_cast<double>(st.events);
    if (obs::Registry* main = obs::metrics()) main->merge(reg);
    run.registry().set_gauge("perf.forest.allocs_per_event", per_event);
    run.registry().set_gauge("perf.forest.echo_events_per_sec",
                             static_cast<double>(st.events) / secs);
    std::printf(
        "  events=%llu  allocs=%llu  allocs/event=%.4f  (events/sec=%.0fk)\n",
        static_cast<unsigned long long>(st.events),
        static_cast<unsigned long long>(allocs), per_event,
        static_cast<double>(st.events) / secs / 1e3);
  }

  std::puts("");
  return 0;
}

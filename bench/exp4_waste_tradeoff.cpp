// EXP4 — The waste trade-off (Observation 3.4): move complexity carries a
// log(M/(W+1)) factor.
//
// Fixed deep path (n = 2048), demand 3M with M = n: sweep W from M/2 down
// to 0 and report measured cost, the iteration count (the wrapper runs
// ~log(M/(W+1)) iterations), and cost normalized by the claimed factor.
// Also ablates the iterated wrapper against the single-shot base controller
// (Lemma 3.3's U*(M/W) bound) at small W, where single-shot explodes.

#include <cmath>

#include "bench_util.hpp"
#include "core/centralized_controller.hpp"
#include "core/iterated_controller.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

constexpr std::uint64_t kN = 2048;

std::pair<std::uint64_t, std::uint64_t> run_iterated(std::uint64_t W,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kPath, kN, rng);
  IteratedController::Options opts;
  opts.track_domains = false;
  IteratedController ctrl(t, kN, W, 2 * kN, opts);
  const auto nodes = t.alive_nodes();
  for (std::uint64_t i = 0; i < 3 * kN; ++i) {
    ctrl.request_event(nodes[rng.index(nodes.size())]);
  }
  return {ctrl.cost(), ctrl.iterations()};
}

std::uint64_t run_single_shot(std::uint64_t W, std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kPath, kN, rng);
  CentralizedController::Options opts;
  opts.track_domains = false;
  CentralizedController ctrl(t, Params(kN, W, 2 * kN), opts);
  const auto nodes = t.alive_nodes();
  for (std::uint64_t i = 0; i < 3 * kN; ++i) {
    ctrl.request_event(nodes[rng.index(nodes.size())]);
  }
  return ctrl.cost();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp4", argc, argv);
  const std::uint64_t seed = run.base_seed(29);
  banner("EXP4: the log(M/(W+1)) waste factor (Obs. 3.4)");
  std::printf("n = M = %llu on a path; 3M requests\n",
              static_cast<unsigned long long>(kN));

  // Each W point runs the iterated and (when defined) single-shot
  // controllers independently — a parallel sweep with deferred printing.
  const std::vector<std::uint64_t> waste = {
      kN / 2, kN / 8, kN / 32, kN / 128, 4, 1, 0};
  struct Point {
    std::uint64_t cost = 0, iters = 0;
    std::string single;
  };
  std::vector<Point> points(waste.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    const std::uint64_t W = waste[i];
    const auto [cost, iters] = run_iterated(W, seed);
    // Single-shot base controller requires W >= 1 and pays U*M/W directly.
    points[i] = {cost, iters,
                 W >= 1 ? num(run_single_shot(W, seed))
                        : std::string("(n/a)")};
  });

  Table tab({"W", "iterations", "cost (iterated)", "cost/log2(M/(W+1))",
             "cost (single-shot)"});
  for (std::size_t i = 0; i < waste.size(); ++i) {
    const std::uint64_t W = waste[i];
    const double logf =
        std::max(1.0, std::log2(static_cast<double>(kN) /
                                static_cast<double>(W + 1)));
    tab.row({num(W), num(points[i].iters), num(points[i].cost),
             fp(static_cast<double>(points[i].cost) / logf, 0),
             points[i].single});
  }
  tab.print();
  std::printf("\nshape check: iterations grow ~log(M/(W+1)); iterated cost "
              "grows mildly as W shrinks while the single-shot Lemma 3.3 "
              "controller degrades like M/W.\n");
  return 0;
}

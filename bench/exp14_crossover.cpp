// EXP14 — Who wins where: the crossover between the controller and
// per-request round trips.
//
// The distributed controller pays up to 4x the one-way distance per *cold*
// request (climb, distribute, return, unlock) while the trivial scheme
// pays 2x (request up, permit down); its payoff is reuse — packages parked
// by earlier requests serve later ones near-locally.  How much reuse is
// available is set by the waste budget W (phi and psi scale with it), so
// the crossover lives on the (demand, W) plane:
//
//   * generous W: the controller wins at every demand density measured —
//     even a handful of requests already amortize;
//   * tight W (phi = 1, huge psi): nothing can be cached, every request is
//     a cold 4x walk, and the trivial scheme is ~2x cheaper forever.
//
// That is exactly the paper's log(M/(W+1)) message-complexity factor,
// read as a head-to-head.
//
// The (budget, R) grid runs as a parallel sweep of independent seeded
// simulations; tables print afterwards in point order.

#include "bench_util.hpp"
#include "core/distributed_controller.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct Point {
  std::uint64_t trivial = 0;
  std::uint64_t controller = 0;
};

Point measure(bool generous, std::uint64_t R, std::uint64_t n,
              std::uint64_t seed) {
  Rng rng(seed);
  sim::EventQueue queue;
  sim::Network net(queue, sim::make_delay(sim::DelayKind::kFixed, 1));
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kPath, n, rng);
  DistributedController::Options opts;
  opts.track_domains = false;
  const std::uint64_t W = generous ? 4 * n : 1;
  DistributedController ctrl(net, t, Params(2 * R + 4, W, 2 * n), opts);
  DistributedSyncFacade facade(queue, ctrl);
  const auto nodes = t.alive_nodes();
  Point out;
  for (std::uint64_t i = 0; i < R; ++i) {
    const NodeId u = nodes[rng.index(nodes.size())];
    out.trivial += 2 * t.depth(u);
    facade.request_event(u);
  }
  out.controller = ctrl.messages_used();
  bench::Run::note_net(net.stats());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp14", argc, argv);
  const std::uint64_t seed = run.base_seed(83);
  banner("EXP14: demand-density crossover vs per-request round trips");
  const std::uint64_t n = 1024;
  std::printf("path of %llu nodes; R uniform random requests; trivial = "
              "2 * depth(u) messages per request\n",
              static_cast<unsigned long long>(n));

  const std::vector<bool> budgets = {true, false};
  const std::vector<std::uint64_t> demands = {n / 16, n / 4, n, 4 * n};
  std::vector<Point> points(budgets.size() * demands.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    points[i] = measure(budgets[i / demands.size()],
                        demands[i % demands.size()], n, seed);
  });

  for (std::size_t b = 0; b < budgets.size(); ++b) {
    subhead(budgets[b]
                ? "generous waste budget (W = 4n: phi = 2, small psi)"
                : "tight waste budget (W = 1: phi = 1, huge psi)");
    Table tab({"R", "R/n", "trivial msgs", "controller msgs", "ratio",
               "winner"});
    for (std::size_t j = 0; j < demands.size(); ++j) {
      const std::uint64_t R = demands[j];
      const Point& p = points[b * demands.size() + j];
      const double ratio = static_cast<double>(p.trivial) /
                           static_cast<double>(p.controller);
      tab.row({num(R), fp(static_cast<double>(R) / static_cast<double>(n)),
               num(p.trivial), num(p.controller), fp(ratio),
               ratio > 1.0 ? "controller" : "trivial"});
    }
    tab.print();
  }
  std::printf("\nshape check: with waste to spend the controller wins at "
              "every measured density; with W = 1 every request walks cold "
              "and the trivial scheme's 2x beats the agent's 4x — the "
              "log(M/(W+1)) factor as a head-to-head.\n");
  return 0;
}

// EXP16 — The §5.4 labeling suite end to end: routing, ancestry, and NCA
// labels maintained over the asynchronous controller under churn.  For
// each scheme: amortized messages per membership change, relabel count,
// and the label-size statistic its correctness claim is about.
//
// The three schemes are independent seeded simulations run as a parallel
// sweep; each point produces its finished table row, printed afterwards
// in scheme order.

#include <cmath>

#include "apps/distributed_ancestry_labeling.hpp"
#include "apps/distributed_nca_labeling.hpp"
#include "apps/distributed_tree_routing.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

namespace {

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  tree::DynamicTree tree;
  explicit Sim(std::uint64_t delay_seed)
      : net(queue, sim::make_delay(sim::DelayKind::kUniform, delay_seed)) {}
  ~Sim() { bench::Run::note_net(net.stats()); }
};

// Routing + ancestry share the same churn driver (full dynamic model).
template <typename App>
std::vector<std::string> run_churned(const char* name, std::uint64_t seed) {
  Sim s(seed);
  Rng rng(seed + 2);
  workload::build(s.tree, workload::Shape::kRandomAttach, 128, rng);
  workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath,
                                 Rng(seed + 6));
  App app(s.net, s.tree);
  std::uint64_t changes = 0;
  auto count = [&changes](const core::Result& r) {
    changes += r.granted();
  };
  for (int i = 0; i < 600; ++i) {
    const auto spec = churn.next(s.tree);
    if (spec.type == core::RequestSpec::Type::kAddLeaf) {
      app.submit_add_leaf(spec.subject, count);
    } else if (spec.type == core::RequestSpec::Type::kRemove) {
      app.submit_remove(spec.subject, count);
    }
    if (i % 6 == 5) s.queue.run();
  }
  s.queue.run();
  return {name, num(128), num(changes), num(s.tree.size()),
          num(app.relabels()),
          fp(static_cast<double>(app.messages()) /
                 static_cast<double>(changes),
             1),
          "bits=" + num(app.label_bits()),
          "~log2(n)=" +
              fp(std::log2(static_cast<double>(s.tree.size())), 1)};
}

// NCA (leaf dynamics per Obs. 5.5).
std::vector<std::string> run_nca(std::uint64_t seed) {
  Sim s(seed);
  Rng rng(seed + 8);
  workload::build(s.tree, workload::Shape::kRandomAttach, 128, rng);
  apps::DistributedNcaLabeling nca(s.net, s.tree);
  std::uint64_t changes = 0;
  auto count = [&changes](const core::Result& r) {
    changes += r.granted();
  };
  Rng pick(seed + 12);
  for (int i = 0; i < 600; ++i) {
    if (pick.chance(0.55)) {
      nca.submit_add_leaf(workload::random_node(s.tree, pick), count);
    } else {
      const auto nodes = s.tree.alive_nodes();
      const NodeId v = nodes[pick.index(nodes.size())];
      if (v != s.tree.root() && s.tree.is_leaf(v)) {
        nca.submit_remove_leaf(v, count);
      }
    }
    if (i % 6 == 5) s.queue.run();
  }
  s.queue.run();
  return {"nca", num(128), num(changes), num(s.tree.size()),
          num(nca.rebuilds()),
          fp(static_cast<double>(nca.messages()) /
                 static_cast<double>(changes),
             1),
          "entries=" + num(nca.max_label_entries()),
          "~log2(n)=" +
              fp(std::log2(static_cast<double>(s.tree.size())), 1)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp16", argc, argv);
  const std::uint64_t seed = run.base_seed(101);
  banner("EXP16: the dynamic labeling suite (§5.4) over the controller");

  std::vector<std::vector<std::string>> rows(3);
  parallel_sweep(run, rows.size(), [&](std::size_t i) {
    switch (i) {
      case 0:
        rows[i] = run_churned<apps::DistributedTreeRouting>("routing", seed);
        break;
      case 1:
        rows[i] =
            run_churned<apps::DistributedAncestryLabeling>("ancestry", seed);
        break;
      default:
        rows[i] = run_nca(seed);
        break;
    }
  });

  Table tab({"scheme", "n0", "changes", "n_final", "relabels",
             "msgs/change", "label metric", "bound"});
  for (auto& r : rows) tab.row(std::move(r));
  tab.print();
  std::printf("\nshape check: routing/ancestry label bits stay ~log2(n)+4 "
              "(the stride constant); NCA label entries stay ~log2(n); all "
              "three amortize to tens of messages per change.\n");
  return 0;
}

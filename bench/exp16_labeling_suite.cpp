// EXP16 — The §5.4 labeling suite end to end: routing, ancestry, and NCA
// labels maintained over the asynchronous controller under churn.  For
// each scheme: amortized messages per membership change, relabel count,
// and the label-size statistic its correctness claim is about.

#include <cmath>

#include "apps/distributed_ancestry_labeling.hpp"
#include "apps/distributed_nca_labeling.hpp"
#include "apps/distributed_tree_routing.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

namespace {

struct Sim {
  sim::EventQueue queue;
  sim::Network net;
  tree::DynamicTree tree;
  Sim() : net(queue, sim::make_delay(sim::DelayKind::kUniform, 101)) {}
  ~Sim() { bench::Run::note_net(net.stats()); }
};

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp16", argc, argv);
  banner("EXP16: the dynamic labeling suite (§5.4) over the controller");

  Table tab({"scheme", "n0", "changes", "n_final", "relabels",
             "msgs/change", "label metric", "bound"});

  // Routing + ancestry share the same churn driver (full dynamic model).
  for (int which = 0; which < 2; ++which) {
    Sim s;
    Rng rng(103);
    workload::build(s.tree, workload::Shape::kRandomAttach, 128, rng);
    workload::ChurnGenerator churn(workload::ChurnModel::kBirthDeath,
                                   Rng(107));
    std::uint64_t changes = 0;
    auto count = [&changes](const core::Result& r) {
      changes += r.granted();
    };
    if (which == 0) {
      apps::DistributedTreeRouting router(s.net, s.tree);
      for (int i = 0; i < 600; ++i) {
        const auto spec = churn.next(s.tree);
        if (spec.type == core::RequestSpec::Type::kAddLeaf) {
          router.submit_add_leaf(spec.subject, count);
        } else if (spec.type == core::RequestSpec::Type::kRemove) {
          router.submit_remove(spec.subject, count);
        }
        if (i % 6 == 5) s.queue.run();
      }
      s.queue.run();
      tab.row({"routing", num(128), num(changes), num(s.tree.size()),
               num(router.relabels()),
               fp(static_cast<double>(router.messages()) /
                      static_cast<double>(changes),
                  1),
               "bits=" + num(router.label_bits()),
               "~log2(n)=" + fp(std::log2(static_cast<double>(
                                    s.tree.size())),
                                1)});
    } else {
      apps::DistributedAncestryLabeling anc(s.net, s.tree);
      for (int i = 0; i < 600; ++i) {
        const auto spec = churn.next(s.tree);
        if (spec.type == core::RequestSpec::Type::kAddLeaf) {
          anc.submit_add_leaf(spec.subject, count);
        } else if (spec.type == core::RequestSpec::Type::kRemove) {
          anc.submit_remove(spec.subject, count);
        }
        if (i % 6 == 5) s.queue.run();
      }
      s.queue.run();
      tab.row({"ancestry", num(128), num(changes), num(s.tree.size()),
               num(anc.relabels()),
               fp(static_cast<double>(anc.messages()) /
                      static_cast<double>(changes),
                  1),
               "bits=" + num(anc.label_bits()),
               "~log2(n)=" + fp(std::log2(static_cast<double>(
                                    s.tree.size())),
                                1)});
    }
  }

  // NCA (leaf dynamics per Obs. 5.5).
  {
    Sim s;
    Rng rng(109);
    workload::build(s.tree, workload::Shape::kRandomAttach, 128, rng);
    apps::DistributedNcaLabeling nca(s.net, s.tree);
    std::uint64_t changes = 0;
    auto count = [&changes](const core::Result& r) {
      changes += r.granted();
    };
    Rng pick(113);
    for (int i = 0; i < 600; ++i) {
      if (pick.chance(0.55)) {
        nca.submit_add_leaf(workload::random_node(s.tree, pick), count);
      } else {
        const auto nodes = s.tree.alive_nodes();
        const NodeId v = nodes[pick.index(nodes.size())];
        if (v != s.tree.root() && s.tree.is_leaf(v)) {
          nca.submit_remove_leaf(v, count);
        }
      }
      if (i % 6 == 5) s.queue.run();
    }
    s.queue.run();
    tab.row({"nca", num(128), num(changes), num(s.tree.size()),
             num(nca.rebuilds()),
             fp(static_cast<double>(nca.messages()) /
                    static_cast<double>(changes),
                1),
             "entries=" + num(nca.max_label_entries()),
             "~log2(n)=" + fp(std::log2(static_cast<double>(s.tree.size())),
                              1)});
  }

  tab.print();
  std::printf("\nshape check: routing/ancestry label bits stay ~log2(n)+4 "
              "(the stride constant); NCA label entries stay ~log2(n); all "
              "three amortize to tens of messages per change.\n");
  return 0;
}

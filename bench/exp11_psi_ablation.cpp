// EXP11 — Ablating the distance scale psi (DESIGN.md §6).
//
// psi = 4*ceil(log U + 2)*max(ceil(U/W),1) is the constant that positions
// the filler windows and the u_k waypoints.  Shrinking it makes packages
// sit closer to requesters (cheaper searches) but packs more same-level
// packages into the tree, inflating the permits stranded in packages —
// the quantity Lemma 3.2 bounds by W when psi is honest.  This ablation
// scales psi and measures both sides of the trade: total move complexity
// and the leftover (stranded) permits at exhaustion, against the waste
// budget the analysis promises.
//
// The psi points are independent seeded runs executed as a parallel
// sweep; the table prints afterwards in point order.

#include "bench_util.hpp"
#include "core/centralized_controller.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::core;
using namespace dyncon::bench;

namespace {

struct Point {
  std::uint64_t psi = 0;
  std::uint64_t moves = 0;
  std::uint64_t granted = 0;
  std::uint64_t stranded = 0;
};

Point measure(std::uint64_t sn, std::uint64_t sd, std::uint64_t n,
              std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kPath, n, rng);
  const Params params = Params(n, n / 2, 2 * n).with_psi_scale(sn, sd);
  CentralizedController::Options opts;
  opts.mode = CentralizedController::Mode::kExhaustSignal;
  opts.track_domains = false;
  CentralizedController ctrl(t, params, opts);
  const auto nodes = t.alive_nodes();
  while (!ctrl.exhausted()) {
    ctrl.request_event(nodes[rng.index(nodes.size())]);
  }
  return {params.psi(), ctrl.cost(), ctrl.permits_granted(),
          ctrl.unused_permits()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp11", argc, argv);
  const std::uint64_t seed = run.base_seed(67);
  banner("EXP11: ablation of the distance scale psi");
  const std::uint64_t n = 2048;
  const std::uint64_t M = n, W = n / 2;
  std::printf("path of %llu nodes, M=%llu, W=%llu; flood until first "
              "exhaustion\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(M),
              static_cast<unsigned long long>(W));

  const std::vector<std::pair<std::uint64_t, std::uint64_t>> scales = {
      {1, 8}, {1, 4}, {1, 2}, {1, 1}, {2, 1}, {4, 1}};
  std::vector<Point> points(scales.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    points[i] = measure(scales[i].first, scales[i].second, n, seed);
  });

  Table tab({"psi scale", "psi", "moves at exhaust", "granted",
             "stranded permits", "W budget", "within W?"});
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const auto [sn, sd] = scales[i];
    const Point& p = points[i];
    tab.row({fp(static_cast<double>(sn) / static_cast<double>(sd), 3),
             num(p.psi), num(p.moves), num(p.granted), num(p.stranded),
             num(W), p.stranded <= W ? "yes" : "NO (analysis voided)"});
  }
  tab.print();
  std::printf("\nreading: the paper's psi (scale 1) keeps stranded permits "
              "within W while already amortizing; smaller psi trades "
              "liveness margin for cheaper searches, larger psi wastes "
              "moves for nothing.\n");
  return 0;
}

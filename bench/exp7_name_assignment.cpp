// EXP7 — The name-assignment protocol (Theorem 5.2): identities stay
// unique and inside [1, 4n] at all times with O(n0 log^2 n0 + sum log^2 n_j)
// messages.
//
// Report the worst max_id/n ratio observed (claim: <= 4), uniqueness
// audits, and amortized messages per change across churn models — one
// independent seeded run per model, executed as a parallel sweep.

#include <algorithm>
#include <cmath>

#include "apps/name_assignment.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

namespace {

struct Point {
  std::uint64_t changes = 0;
  std::uint64_t n_final = 0;
  std::uint64_t iterations = 0;
  double worst_ratio = 0.0;
  bool unique = true;
  double per = 0.0;
};

Point measure(workload::ChurnModel model, std::uint64_t n0,
              std::uint64_t steps, std::uint64_t seed) {
  Rng rng(seed);
  tree::DynamicTree t;
  workload::build(t, workload::Shape::kRandomAttach, n0, rng);
  apps::NameAssignment names(t);
  workload::ChurnGenerator churn(model, Rng(seed + 6));
  Point out;
  for (std::uint64_t i = 0; i < steps && t.size() >= 4; ++i) {
    const auto spec = churn.next(t);
    core::Result r;
    switch (spec.type) {
      case core::RequestSpec::Type::kAddLeaf:
        r = names.request_add_leaf(spec.subject);
        break;
      case core::RequestSpec::Type::kAddInternal:
        r = names.request_add_internal_above(spec.subject);
        break;
      case core::RequestSpec::Type::kRemove:
        r = names.request_remove(spec.subject);
        break;
      default:
        continue;
    }
    out.changes += r.granted();
    if (i % 16 == 0) {  // audits are O(n); sample them
      out.worst_ratio = std::max(
          out.worst_ratio, static_cast<double>(names.max_id()) /
                               static_cast<double>(t.size()));
      out.unique = out.unique && names.ids_unique();
    }
  }
  out.n_final = t.size();
  out.iterations = names.iterations();
  out.per = static_cast<double>(names.messages()) /
            std::max<std::uint64_t>(out.changes, 1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp7", argc, argv);
  const std::uint64_t seed = run.base_seed(31);
  banner("EXP7: name assignment (Thm 5.2)");

  const auto models = workload::all_churn_models();
  const std::uint64_t n0 = 256, steps = 1500;
  std::vector<Point> points(models.size());
  parallel_sweep(run, points.size(), [&](std::size_t i) {
    points[i] = measure(models[i], n0, steps, seed);
  });

  Table tab({"churn", "n0", "changes", "n_final", "iters",
             "worst max_id/n", "unique?", "msgs/change", "/log^2 n"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    const Point& p = points[m];
    const double lg = std::log2(static_cast<double>(
        std::max<std::uint64_t>(p.n_final, 4)));
    tab.row({workload::churn_name(models[m]), num(n0), num(p.changes),
             num(p.n_final), num(p.iterations), fp(p.worst_ratio),
             p.unique ? "yes" : "NO", fp(p.per, 1),
             fp(p.per / (lg * lg), 3)});
  }
  tab.print();
  std::printf("\ninvariants: ids unique at every audit; max_id/n <= 4 "
              "(paper: each identity lies in [1, 4n]).\n");
  return 0;
}

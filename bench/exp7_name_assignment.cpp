// EXP7 — The name-assignment protocol (Theorem 5.2): identities stay
// unique and inside [1, 4n] at all times with O(n0 log^2 n0 + sum log^2 n_j)
// messages.
//
// Report the worst max_id/n ratio observed (claim: <= 4), uniqueness
// audits, and amortized messages per change across churn models.

#include <algorithm>
#include <cmath>

#include "apps/name_assignment.hpp"
#include "bench_util.hpp"
#include "workload/churn.hpp"
#include "workload/shapes.hpp"

using namespace dyncon;
using namespace dyncon::bench;

int main(int argc, char** argv) {
  bench::Run run("exp7", argc, argv);
  banner("EXP7: name assignment (Thm 5.2)");

  Table tab({"churn", "n0", "changes", "n_final", "iters",
             "worst max_id/n", "unique?", "msgs/change", "/log^2 n"});
  for (auto model : workload::all_churn_models()) {
    const std::uint64_t n0 = 256, steps = 1500;
    Rng rng(31);
    tree::DynamicTree t;
    workload::build(t, workload::Shape::kRandomAttach, n0, rng);
    apps::NameAssignment names(t);
    workload::ChurnGenerator churn(model, Rng(37));
    double worst_ratio = 0.0;
    bool unique = true;
    std::uint64_t changes = 0;
    for (std::uint64_t i = 0; i < steps && t.size() >= 4; ++i) {
      const auto spec = churn.next(t);
      core::Result r;
      switch (spec.type) {
        case core::RequestSpec::Type::kAddLeaf:
          r = names.request_add_leaf(spec.subject);
          break;
        case core::RequestSpec::Type::kAddInternal:
          r = names.request_add_internal_above(spec.subject);
          break;
        case core::RequestSpec::Type::kRemove:
          r = names.request_remove(spec.subject);
          break;
        default:
          continue;
      }
      changes += r.granted();
      if (i % 16 == 0) {  // audits are O(n); sample them
        worst_ratio = std::max(
            worst_ratio, static_cast<double>(names.max_id()) /
                             static_cast<double>(t.size()));
        unique = unique && names.ids_unique();
      }
    }
    const double per = static_cast<double>(names.messages()) /
                       std::max<std::uint64_t>(changes, 1);
    const double lg = std::log2(static_cast<double>(std::max<std::uint64_t>(
        t.size(), 4)));
    tab.row({workload::churn_name(model), num(n0), num(changes),
             num(t.size()), num(names.iterations()), fp(worst_ratio),
             unique ? "yes" : "NO", fp(per, 1), fp(per / (lg * lg), 3)});
  }
  tab.print();
  std::printf("\ninvariants: ids unique at every audit; max_id/n <= 4 "
              "(paper: each identity lies in [1, 4n]).\n");
  return 0;
}

// EXP20 — end-to-end request latency: percentiles per op kind vs shards.
//
// The forest runtime serves the same closed-loop workload at increasing
// shard counts with the FULL observability stack engaged — per-request
// causal spans (mux root + controller op spans) and the flight recorder
// sampling shard counters at window edges — and checks two claims:
//
//   latency       req.latency.<op> histograms record every request's
//                 arrival-to-completion time; the table reports p50/p95/p99
//                 per op kind (log2-bucket resolution) and exports them as
//                 req.latency.<op>.p50/.p95/.p99 gauges.
//   determinism   the registry JSON, the span dump, and the flight-recorder
//                 timeline are byte-identical at every shard count —
//                 observability rides the deterministic timeline instead of
//                 perturbing it.  Mismatch aborts the binary.
//
// The 1-shard point's spans + timeline land in the run report ("spans" /
// "timeline" sections), which tools/trace_export converts to Chrome
// trace-event JSON for Perfetto (docs/OBSERVABILITY.md).
//
//   --shards=N   cap the sweep's largest shard count (default 8)
//   --jobs       accepted for uniformity; the forest pins workers = shards

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "forest/forest.hpp"
#include "obs/flight.hpp"
#include "obs/span.hpp"
#include "util/cli.hpp"

namespace {

using namespace dyncon;

constexpr std::uint64_t kSeed = 0x20a7e4c7ULL;  // exp20 latency

forest::ForestConfig latency_config(unsigned shards) {
  forest::ForestConfig cfg;
  cfg.shards = shards;
  cfg.mux.users = 2048;
  cfg.mux.trees = 64;
  cfg.mux.requests_per_user = 4;
  cfg.mux.zipf_s = 0.9;
  cfg.tree_size = 48;
  cfg.window = 256;
  cfg.service = forest::Service::kController;
  // Room for every op span of the hottest shard without ring eviction, so
  // the byte-identity gate compares complete records.
  cfg.span_capacity = std::size_t{1} << 16;
  return cfg;
}

/// Counter series the flight recorder samples at window edges.
std::vector<std::string> timeline_counters() {
  return {"forest.requests.total", "forest.requests.granted",
          "forest.ops.grow", "forest.ops.shrink"};
}

struct SweepPoint {
  unsigned shards = 1;
  double secs = 0;
  forest::ForestStats stats;
  obs::Registry reg;
  obs::json::Value spans_doc;
  obs::json::Value timeline_doc;
  std::string registry_json;
  std::string spans_json;
  std::string timeline_json;
};

SweepPoint run_point(unsigned shards) {
  SweepPoint pt;
  pt.shards = shards;
  const forest::ForestConfig cfg = latency_config(shards);
  // Caller-side sink: the mux emits root spans here during the exchange,
  // and the engine merges the per-shard op/hop sinks in at the end.  Sized
  // for the full workload (2 spans per request) so overwritten stays 0.
  obs::SpanSink sink(std::size_t{1} << 17);
  obs::FlightRecorder flight(timeline_counters(), /*period=*/1024);
  obs::ScopedSpans span_scope(sink);   // enables spans for the engine ctor
  obs::ScopedMetrics scope(pt.reg);    // req.latency.* + merged shard regs
  forest::ForestEngine engine(cfg, kSeed);
  engine.set_flight_recorder(&flight);
  const auto t0 = std::chrono::steady_clock::now();
  pt.stats = engine.run();
  pt.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
  pt.spans_doc = sink.to_json();
  pt.timeline_doc = flight.to_json();
  pt.registry_json = pt.reg.to_json().dump();
  pt.spans_json = pt.spans_doc.dump();
  pt.timeline_json = pt.timeline_doc.dump();
  return pt;
}

void percentile_row(bench::Table& table, obs::Registry& main,
                    const obs::Registry& reg, const std::string& op) {
  const std::string name = "req.latency." + op;
  const obs::Histogram* h = reg.histogram(name);
  if (h == nullptr) return;
  const std::uint64_t p50 = h->percentile(0.50);
  const std::uint64_t p95 = h->percentile(0.95);
  const std::uint64_t p99 = h->percentile(0.99);
  table.row({op, bench::num(h->count), bench::fp(h->mean()),
             bench::num(p50), bench::num(p95), bench::num(p99),
             bench::num(h->max)});
  main.set_gauge(name + ".p50", static_cast<double>(p50));
  main.set_gauge(name + ".p95", static_cast<double>(p95));
  main.set_gauge(name + ".p99", static_cast<double>(p99));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Run run("exp20_request_latency", argc, argv);
  bench::banner(
      "EXP20 — request latency percentiles per op kind (spans + timeline "
      "on)");

  const unsigned max_shards =
      util::flag_count(argc, argv, "--shards", 8, /*max_value=*/64);
  const forest::ForestConfig base = latency_config(1);
  run.param("users", base.mux.users);
  run.param("trees", base.mux.trees);
  run.param("requests_per_user", base.mux.requests_per_user);
  run.param("window", base.window);
  run.param("max_shards", static_cast<std::uint64_t>(max_shards));

  std::vector<SweepPoint> points;
  for (unsigned k = 1; k <= max_shards; k *= 2) points.push_back(run_point(k));

  // Determinism gate: registry, span record, and timeline must all be
  // byte-identical at every shard count — with the full observability
  // stack enabled, not just with it off.
  for (std::size_t i = 1; i < points.size(); ++i) {
    const char* diverged =
        points[i].registry_json != points[0].registry_json ? "registry"
        : points[i].spans_json != points[0].spans_json     ? "span record"
        : points[i].timeline_json != points[0].timeline_json ? "timeline"
                                                             : nullptr;
    if (diverged != nullptr) {
      std::fprintf(stderr,
                   "FATAL: shards=%u diverged from shards=1 in the %s — "
                   "observability must ride the deterministic timeline\n",
                   points[i].shards, diverged);
      return 1;
    }
  }

  bench::subhead("sweep (identical workload + spans + flight recorder)");
  bench::Table sweep({"shards", "requests", "spans", "overwritten",
                      "timeline_rows", "reqs/sec"});
  for (const SweepPoint& pt : points) {
    const std::uint64_t spans =
        pt.spans_doc.find("recorded")->as_uint();
    const std::uint64_t lost =
        pt.spans_doc.find("overwritten")->as_uint();
    const std::uint64_t rows =
        static_cast<std::uint64_t>(
            pt.timeline_doc.find("rows")->as_array().size());
    sweep.row({bench::num(pt.shards), bench::num(pt.stats.requests),
               bench::num(spans), bench::num(lost), bench::num(rows),
               bench::fp(static_cast<double>(pt.stats.requests) / pt.secs /
                             1e3,
                         1) +
                   "k"});
  }
  sweep.print();
  std::printf(
      "\n  determinism: registry+spans+timeline identical at all %zu shard "
      "counts  [ok]\n",
      points.size());

  bench::subhead("end-to-end latency per op kind (virtual ticks)");
  bench::Table lat({"op", "count", "mean", "p50", "p95", "p99", "max"});
  for (const char* op : {"permit", "grow", "shrink"}) {
    percentile_row(lat, run.registry(), points[0].reg, op);
  }
  lat.print();

  // Fold every point's registry into the run report in point order (the
  // same shape exp19 uses), and attach the 1-shard point's causal record.
  for (const SweepPoint& pt : points) run.registry().merge(pt.reg);
  run.report().set_spans(points[0].spans_doc);
  run.report().set_timeline(points[0].timeline_doc);

  std::puts("");
  return 0;
}
